// Package sim executes PT32 programs and produces the dynamic
// retired-instruction stream that the trace selector and all predictors
// consume.
//
// The simulator is purely functional (no timing): it plays the role of
// the SimpleScalar functional simulator in the original paper, feeding
// "a dynamic stream of instructions ... to the prediction simulator".
package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"pathtrace/internal/asm"
	"pathtrace/internal/isa"
)

// MemKind classifies an instruction's data-memory access.
type MemKind uint8

const (
	MemNone MemKind = iota
	MemLoad
	MemStore
)

// Retired describes one retired instruction. It carries exactly the
// information the front-end models need: where the instruction was,
// what kind of control transfer it performed, where control went, and
// any data-memory access (for the engine's cache models).
type Retired struct {
	PC      uint32
	Op      isa.Opcode
	Ctrl    isa.CtrlClass
	Taken   bool   // conditional branches only
	NextPC  uint32 // actual successor PC
	Mem     MemKind
	MemAddr uint32
}

// ErrHalted is returned by Step once the program has executed HALT.
var ErrHalted = errors.New("sim: program halted")

// Fault describes a run-time error (bad memory access, bad PC, ...).
type Fault struct {
	PC  uint32
	Msg string
}

func (f *Fault) Error() string { return fmt.Sprintf("sim: fault at pc %#x: %s", f.PC, f.Msg) }

// CPU is the architectural state of a running PT32 program.
type CPU struct {
	PC   uint32
	Regs [isa.NumRegs]uint32

	// Output collects values emitted by OUT, so workloads can prove
	// they computed something real.
	Output []uint32

	// InstrCount is the number of instructions retired so far.
	InstrCount uint64

	prog   *asm.Program
	text   []isa.Instr // predecoded text segment
	mem    []byte      // flat memory image, addresses [0, StackTop)
	halted bool
}

// textCache shares predecoded text segments between CPUs running the
// same program (keyed by *asm.Program identity). Decoded text is
// read-only after construction, so sharing is safe; re-running each
// workload for every experiment previously re-decoded its whole text
// segment each time.
var textCache sync.Map // *asm.Program -> []isa.Instr

func decodeText(p *asm.Program) ([]isa.Instr, error) {
	if text, ok := textCache.Load(p); ok {
		return text.([]isa.Instr), nil
	}
	text := make([]isa.Instr, len(p.Text))
	for i, w := range p.Text {
		in, err := isa.Decode(w)
		if err != nil {
			return nil, fmt.Errorf("sim: text[%d]: %w", i, err)
		}
		text[i] = in
	}
	actual, _ := textCache.LoadOrStore(p, text)
	return actual.([]isa.Instr), nil
}

// New creates a CPU with the program loaded and architectural state
// initialised: PC at the entry point, sp just below the stack top, gp at
// the data base.
func New(p *asm.Program) (*CPU, error) {
	c := &CPU{prog: p}
	text, err := decodeText(p)
	if err != nil {
		return nil, err
	}
	c.text = text
	c.mem = make([]byte, p.StackTop)
	copy(c.mem[p.DataBase:], p.Data)
	c.Reset()
	return c, nil
}

// MustNew is New for known-good programs; it panics on error.
func MustNew(p *asm.Program) *CPU {
	c, err := New(p)
	if err != nil {
		panic(err)
	}
	return c
}

// Reset restores the initial architectural state without reloading the
// program image. Note that data memory is NOT restored; create a fresh
// CPU to re-run a program from scratch.
func (c *CPU) Reset() {
	c.PC = c.prog.Entry
	for i := range c.Regs {
		c.Regs[i] = 0
	}
	c.Regs[isa.SP] = c.prog.StackTop - 16
	c.Regs[isa.GP] = c.prog.DataBase
	c.Output = nil
	c.InstrCount = 0
	c.halted = false
}

// Halted reports whether the program has executed HALT.
func (c *CPU) Halted() bool { return c.halted }

// Program returns the loaded program.
func (c *CPU) Program() *asm.Program { return c.prog }

func (c *CPU) fault(format string, args ...any) error {
	c.halted = true
	return &Fault{PC: c.PC, Msg: fmt.Sprintf(format, args...)}
}

func (c *CPU) fetch() (isa.Instr, error) {
	i := int(c.PC-c.prog.TextBase) >> 2
	if c.PC%4 != 0 || i < 0 || i >= len(c.text) {
		return isa.Instr{}, c.fault("instruction fetch outside text segment")
	}
	return c.text[i], nil
}

func (c *CPU) loadWord(addr uint32) (uint32, error) {
	if addr%4 != 0 {
		return 0, c.fault("unaligned word load at %#x", addr)
	}
	if int(addr)+4 > len(c.mem) {
		return 0, c.fault("word load outside memory at %#x", addr)
	}
	return uint32(c.mem[addr]) | uint32(c.mem[addr+1])<<8 |
		uint32(c.mem[addr+2])<<16 | uint32(c.mem[addr+3])<<24, nil
}

func (c *CPU) storeWord(addr, v uint32) error {
	if addr%4 != 0 {
		return c.fault("unaligned word store at %#x", addr)
	}
	if int(addr)+4 > len(c.mem) {
		return c.fault("word store outside memory at %#x", addr)
	}
	c.mem[addr] = byte(v)
	c.mem[addr+1] = byte(v >> 8)
	c.mem[addr+2] = byte(v >> 16)
	c.mem[addr+3] = byte(v >> 24)
	return nil
}

func (c *CPU) loadByte(addr uint32) (byte, error) {
	if int(addr) >= len(c.mem) {
		return 0, c.fault("byte load outside memory at %#x", addr)
	}
	return c.mem[addr], nil
}

func (c *CPU) storeByte(addr uint32, v byte) error {
	if int(addr) >= len(c.mem) {
		return c.fault("byte store outside memory at %#x", addr)
	}
	c.mem[addr] = v
	return nil
}

func (c *CPU) setReg(r isa.Reg, v uint32) {
	if r != isa.Zero {
		c.Regs[r] = v
	}
}

// Step executes one instruction and returns its retirement record.
// After HALT has retired, further calls return ErrHalted.
func (c *CPU) Step() (Retired, error) {
	if c.halted {
		return Retired{}, ErrHalted
	}
	in, err := c.fetch()
	if err != nil {
		return Retired{}, err
	}
	pc := c.PC
	next := pc + 4
	ret := Retired{PC: pc, Op: in.Op, Ctrl: in.Op.Ctrl()}

	rs := c.Regs[in.Rs]
	rt := c.Regs[in.Rt]
	switch in.Op {
	case isa.ADD:
		c.setReg(in.Rd, rs+rt)
	case isa.SUB:
		c.setReg(in.Rd, rs-rt)
	case isa.MUL:
		c.setReg(in.Rd, rs*rt)
	case isa.DIV:
		if rt == 0 {
			c.setReg(in.Rd, 0)
		} else {
			c.setReg(in.Rd, uint32(int32(rs)/int32(rt)))
		}
	case isa.REM:
		if rt == 0 {
			c.setReg(in.Rd, 0)
		} else {
			c.setReg(in.Rd, uint32(int32(rs)%int32(rt)))
		}
	case isa.AND:
		c.setReg(in.Rd, rs&rt)
	case isa.OR:
		c.setReg(in.Rd, rs|rt)
	case isa.XOR:
		c.setReg(in.Rd, rs^rt)
	case isa.NOR:
		c.setReg(in.Rd, ^(rs | rt))
	case isa.SLT:
		c.setReg(in.Rd, b2u(int32(rs) < int32(rt)))
	case isa.SLTU:
		c.setReg(in.Rd, b2u(rs < rt))
	case isa.SLLV:
		c.setReg(in.Rd, rs<<(rt&31))
	case isa.SRLV:
		c.setReg(in.Rd, rs>>(rt&31))
	case isa.SRAV:
		c.setReg(in.Rd, uint32(int32(rs)>>(rt&31)))

	case isa.ADDI:
		c.setReg(in.Rt, rs+uint32(in.Imm))
	case isa.ANDI:
		c.setReg(in.Rt, rs&(uint32(in.Imm)&0xffff))
	case isa.ORI:
		c.setReg(in.Rt, rs|(uint32(in.Imm)&0xffff))
	case isa.XORI:
		c.setReg(in.Rt, rs^(uint32(in.Imm)&0xffff))
	case isa.SLTI:
		c.setReg(in.Rt, b2u(int32(rs) < in.Imm))
	case isa.SLTIU:
		c.setReg(in.Rt, b2u(rs < uint32(in.Imm)))
	case isa.SLL:
		c.setReg(in.Rt, rs<<(uint32(in.Imm)&31))
	case isa.SRL:
		c.setReg(in.Rt, rs>>(uint32(in.Imm)&31))
	case isa.SRA:
		c.setReg(in.Rt, uint32(int32(rs)>>(uint32(in.Imm)&31)))
	case isa.LUI:
		c.setReg(in.Rt, uint32(in.Imm)<<16)

	case isa.LW:
		addr := rs + uint32(in.Imm)
		v, err := c.loadWord(addr)
		if err != nil {
			return Retired{}, err
		}
		c.setReg(in.Rt, v)
		ret.Mem, ret.MemAddr = MemLoad, addr
	case isa.LB:
		addr := rs + uint32(in.Imm)
		v, err := c.loadByte(addr)
		if err != nil {
			return Retired{}, err
		}
		c.setReg(in.Rt, uint32(int32(int8(v))))
		ret.Mem, ret.MemAddr = MemLoad, addr
	case isa.LBU:
		addr := rs + uint32(in.Imm)
		v, err := c.loadByte(addr)
		if err != nil {
			return Retired{}, err
		}
		c.setReg(in.Rt, uint32(v))
		ret.Mem, ret.MemAddr = MemLoad, addr
	case isa.SW:
		addr := rs + uint32(in.Imm)
		if err := c.storeWord(addr, rt); err != nil {
			return Retired{}, err
		}
		ret.Mem, ret.MemAddr = MemStore, addr
	case isa.SB:
		addr := rs + uint32(in.Imm)
		if err := c.storeByte(addr, byte(rt)); err != nil {
			return Retired{}, err
		}
		ret.Mem, ret.MemAddr = MemStore, addr

	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		var taken bool
		switch in.Op {
		case isa.BEQ:
			taken = rs == rt
		case isa.BNE:
			taken = rs != rt
		case isa.BLT:
			taken = int32(rs) < int32(rt)
		case isa.BGE:
			taken = int32(rs) >= int32(rt)
		case isa.BLTU:
			taken = rs < rt
		case isa.BGEU:
			taken = rs >= rt
		}
		ret.Taken = taken
		if taken {
			next = in.BranchTarget(pc)
		}

	case isa.J:
		next = in.Target
	case isa.JAL:
		c.setReg(isa.RA, pc+4)
		next = in.Target
	case isa.JR:
		next = rs
	case isa.JALR:
		c.setReg(in.Rd, pc+4)
		next = rs
	case isa.RET:
		next = c.Regs[isa.RA]

	case isa.HALT:
		c.halted = true
	case isa.OUT:
		c.Output = append(c.Output, rs)
	case isa.NOP:
		// nothing
	default:
		return Retired{}, c.fault("unimplemented opcode %v", in.Op)
	}

	c.PC = next
	c.InstrCount++
	ret.NextPC = next
	return ret, nil
}

// Run executes up to limit instructions (0 = no limit), invoking visit
// for each retired instruction. It returns nil when the program halts
// or the limit is reached, and the fault otherwise.
func (c *CPU) Run(limit uint64, visit func(Retired)) error {
	return c.RunContext(nil, limit, visit)
}

// watchdogStride is how many instructions retire between context
// checks in RunContext — the instruction-step watchdog granularity.
// Small enough that a deadline stops a runaway workload within
// microseconds, large enough that the check is free.
const watchdogStride = 4096

// RunContext is Run with an instruction-step watchdog: every
// watchdogStride retired instructions it checks ctx, and aborts with a
// wrapped ctx.Err() when the context is done. A nil ctx disables the
// watchdog. This is what lets the experiment harness put a hard
// deadline on a runaway (or merely oversized) workload without leaking
// the goroutine that runs it.
func (c *CPU) RunContext(ctx context.Context, limit uint64, visit func(Retired)) error {
	check := uint64(0) // instructions until the next watchdog poll
	for limit == 0 || c.InstrCount < limit {
		if ctx != nil && check == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sim: run aborted at %d instructions: %w", c.InstrCount, err)
			}
			check = watchdogStride
		}
		check--
		r, err := c.Step()
		if err != nil {
			if errors.Is(err, ErrHalted) {
				return nil
			}
			return err
		}
		if visit != nil {
			visit(r)
		}
		if c.halted {
			return nil
		}
	}
	return nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
