package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"pathtrace/internal/asm"
)

// TestRunContextDeadline: the instruction-step watchdog stops an
// unbounded spin loop at the context deadline without help from an
// instruction limit.
func TestRunContextDeadline(t *testing.T) {
	c := MustNew(asm.MustAssemble("main: j main"))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.RunContext(ctx, 0, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Errorf("watchdog took %v to honour a 50ms deadline", el)
	}
	if c.InstrCount == 0 {
		t.Error("no instructions retired before the deadline")
	}
}

// TestRunContextCanceled: an already-canceled context aborts before any
// instruction retires.
func TestRunContextCanceled(t *testing.T) {
	c := MustNew(asm.MustAssemble("main: j main"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.RunContext(ctx, 1000, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want Canceled", err)
	}
	if c.InstrCount != 0 {
		t.Errorf("retired %d instructions under a canceled context", c.InstrCount)
	}
}

// TestRunContextNil: a nil context disables the watchdog; the limit
// still bounds the run.
func TestRunContextNil(t *testing.T) {
	c := MustNew(asm.MustAssemble("main: j main"))
	if err := c.RunContext(nil, 500, nil); err != nil {
		t.Fatal(err)
	}
	if c.InstrCount != 500 {
		t.Errorf("InstrCount = %d, want 500", c.InstrCount)
	}
}
