package sim

import (
	"errors"
	"testing"

	"pathtrace/internal/asm"
	"pathtrace/internal/isa"
)

// run assembles src, runs it to completion and returns the CPU.
func run(t *testing.T, src string) *CPU {
	t.Helper()
	c := MustNew(asm.MustAssemble(src))
	if err := c.Run(1_000_000, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !c.Halted() {
		t.Fatal("program did not halt within 1M instructions")
	}
	return c
}

func wantOutput(t *testing.T, c *CPU, want ...uint32) {
	t.Helper()
	if len(c.Output) != len(want) {
		t.Fatalf("output = %v, want %v", c.Output, want)
	}
	for i := range want {
		if c.Output[i] != want[i] {
			t.Errorf("output[%d] = %d (%#x), want %d", i, c.Output[i], c.Output[i], want[i])
		}
	}
}

func TestArithmetic(t *testing.T) {
	c := run(t, `
main:   li t0, 21
        li t1, 2
        mul t2, t0, t1      # 42
        out t2
        sub t3, t2, t0      # 21
        out t3
        li t4, -7
        div t5, t4, t1      # -3
        out t5
        rem t6, t4, t1      # -1
        out t6
        li t7, 0
        div s0, t0, t7      # div by zero -> 0
        out s0
        halt
`)
	neg := func(v int32) uint32 { return uint32(v) }
	wantOutput(t, c, 42, 21, neg(-3), neg(-1), 0)
}

func TestLogicAndShifts(t *testing.T) {
	c := run(t, `
main:   li t0, 0xf0f0
        li t1, 0x0ff0
        and t2, t0, t1
        out t2              # 0x0ff0 & 0xf0f0 = 0x00f0... check: 0xf0f0 & 0x0ff0 = 0x00f0
        or  t3, t0, t1
        out t3              # 0xfff0
        xor t4, t0, t1
        out t4              # 0xff00
        nor t5, t0, t1
        out t5              # ^0xfff0
        ori t6, zero, 0x8000 # zero-extended logical imm
        out t6
        li  t7, 1
        sll s0, t7, 31
        out s0              # 0x80000000
        srl s1, s0, 31
        out s1              # 1
        sra s2, s0, 31
        out s2              # 0xffffffff
        li  s3, 4
        sllv s4, t7, s3
        out s4              # 16
        halt
`)
	wantOutput(t, c, 0x00f0, 0xfff0, 0xff00, ^uint32(0xfff0), 0x8000,
		0x80000000, 1, 0xffffffff, 16)
}

func TestComparisons(t *testing.T) {
	c := run(t, `
main:   li t0, -1
        li t1, 1
        slt t2, t0, t1
        out t2              # 1 signed
        sltu t3, t0, t1
        out t3              # 0 unsigned (0xffffffff > 1)
        slti t4, t0, 0
        out t4              # 1
        sltiu t5, t1, 2
        out t5              # 1
        halt
`)
	wantOutput(t, c, 1, 0, 1, 1)
}

func TestMemory(t *testing.T) {
	c := run(t, `
        .data
vals:   .word 10, 20, 30
buf:    .space 16
        .text
main:   la t0, vals
        lw t1, 0(t0)
        lw t2, 4(t0)
        add t3, t1, t2
        out t3              # 30
        la t4, buf
        sw t3, 0(t4)
        lw t5, 0(t4)
        out t5              # 30
        li t6, 0x41
        sb t6, 5(t4)
        lbu t7, 5(t4)
        out t7              # 0x41
        li s0, -1
        sb s0, 6(t4)
        lb s1, 6(t4)
        out s1              # sign-extended -1
        lbu s2, 6(t4)
        out s2              # 255
        halt
`)
	wantOutput(t, c, 30, 30, 0x41, 0xffffffff, 255)
}

func TestBranchSemantics(t *testing.T) {
	// Each branch outputs 1 when it behaves correctly.
	c := run(t, `
main:   li t0, 5
        li t1, 5
        li t2, -3
        li v0, 0
        beq t0, t1, ok1
        j fail
ok1:    bne t0, t2, ok2
        j fail
ok2:    blt t2, t0, ok3
        j fail
ok3:    bge t0, t1, ok4
        j fail
ok4:    bltu t0, t2, ok5    # unsigned: 5 < 0xfffffffd
        j fail
ok5:    bgeu t2, t0, ok6
        j fail
ok6:    li v0, 1
fail:   out v0
        halt
`)
	wantOutput(t, c, 1)
}

func TestCallReturn(t *testing.T) {
	c := run(t, `
main:   li a0, 10
        jal double
        out v0              # 20
        la t9, triple
        jalr t9
        out v0              # 60
        halt
double: add v0, a0, a0
        ret
triple: add v0, v0, a0
        add v0, v0, a0
        add v0, v0, a0      # v0 = 20 + 30 = 50? no: v0=20 then +10*3 = 50
        ret
`)
	wantOutput(t, c, 20, 50)
}

func TestRecursiveFib(t *testing.T) {
	c := run(t, `
# fib(10) = 55, classic recursion through the stack.
main:   li a0, 10
        jal fib
        out v0
        halt
fib:    li t0, 2
        blt a0, t0, base
        addi sp, sp, -12
        sw ra, 0(sp)
        sw a0, 4(sp)
        addi a0, a0, -1
        jal fib
        sw v0, 8(sp)
        lw a0, 4(sp)
        addi a0, a0, -2
        jal fib
        lw t1, 8(sp)
        add v0, v0, t1
        lw ra, 0(sp)
        addi sp, sp, 12
        ret
base:   move v0, a0
        ret
`)
	wantOutput(t, c, 55)
}

func TestZeroRegisterImmutable(t *testing.T) {
	c := run(t, `
main:   li t0, 7
        add zero, t0, t0
        addi zero, t0, 5
        out zero
        halt
`)
	wantOutput(t, c, 0)
}

func TestRetiredStream(t *testing.T) {
	c := MustNew(asm.MustAssemble(`
main:   li t0, 2
loop:   addi t0, t0, -1
        bne t0, zero, loop
        jal f
        halt
f:      ret
`))
	var rec []Retired
	if err := c.Run(0, func(r Retired) { rec = append(rec, r) }); err != nil {
		t.Fatal(err)
	}
	// li(1) + 2*(addi,bne) + jal + ret + halt = 8 retires.
	if len(rec) != 8 {
		t.Fatalf("retired %d instructions, want 8: %v", len(rec), rec)
	}
	// First bne is taken, second not.
	if !rec[2].Taken || rec[2].Ctrl != isa.CtrlCondDir {
		t.Errorf("rec[2] = %+v, want taken conditional", rec[2])
	}
	if rec[4].Taken {
		t.Errorf("rec[4] = %+v, want not-taken", rec[4])
	}
	jal := rec[5]
	if jal.Ctrl != isa.CtrlCallDir || jal.NextPC != c.Program().Symbols["f"] {
		t.Errorf("jal record = %+v", jal)
	}
	ret := rec[6]
	if ret.Ctrl != isa.CtrlReturn || ret.NextPC != jal.PC+4 {
		t.Errorf("ret record = %+v", ret)
	}
	if rec[7].Ctrl != isa.CtrlHalt {
		t.Errorf("last record = %+v, want halt", rec[7])
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"jump outside text", "main: li t0, 0x500000\njr t0"},
		{"unaligned jump", "main: li t0, 0x10002\njr t0"},
		{"load outside memory", "main: li t0, 0x7fffffc\nlw t1, 4(t0)"},
		{"unaligned load", "main: li t0, 0x100002\nlw t1, 0(t0)"},
		{"unaligned store", "main: li t0, 0x100002\nsw t1, 0(t0)"},
		{"store outside memory", "main: li t0, 0x7fffffc\nsw t1, 4(t0)"},
		{"byte load outside", "main: li t0, 0x7ffffff\nlbu t1, 1(t0)"},
		{"byte store outside", "main: li t0, 0x7ffffff\nsb t1, 1(t0)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := MustNew(asm.MustAssemble(tc.src))
			err := c.Run(100, nil)
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("err = %v, want *Fault", err)
			}
			if !c.Halted() {
				t.Error("CPU not halted after fault")
			}
			if _, err := c.Step(); !errors.Is(err, ErrHalted) {
				t.Errorf("Step after fault = %v, want ErrHalted", err)
			}
		})
	}
}

func TestRunLimit(t *testing.T) {
	c := MustNew(asm.MustAssemble("main: j main"))
	if err := c.Run(1000, nil); err != nil {
		t.Fatal(err)
	}
	if c.InstrCount != 1000 {
		t.Errorf("InstrCount = %d, want 1000", c.InstrCount)
	}
	if c.Halted() {
		t.Error("spin loop halted unexpectedly")
	}
}

func TestReset(t *testing.T) {
	p := asm.MustAssemble("main: out sp\nhalt")
	c := MustNew(p)
	if err := c.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	wantOutput(t, c, p.StackTop-16)
	c.Reset()
	if c.PC != p.Entry || c.Halted() || c.InstrCount != 0 || len(c.Output) != 0 {
		t.Error("Reset did not restore initial state")
	}
	if c.Regs[isa.GP] != p.DataBase {
		t.Errorf("gp = %#x, want %#x", c.Regs[isa.GP], p.DataBase)
	}
}

func TestRetiredMemoryFields(t *testing.T) {
	c := MustNew(asm.MustAssemble(`
        .data
w:      .word 7
        .text
main:   lw  t0, 0(gp)
        sw  t0, 4(gp)
        lb  t1, 0(gp)
        lbu t2, 1(gp)
        sb  t0, 2(gp)
        add t3, t0, t0
        halt
`))
	var recs []Retired
	if err := c.Run(0, func(r Retired) { recs = append(recs, r) }); err != nil {
		t.Fatal(err)
	}
	base := c.Program().DataBase
	want := []struct {
		kind MemKind
		addr uint32
	}{
		{MemLoad, base}, {MemStore, base + 4}, {MemLoad, base},
		{MemLoad, base + 1}, {MemStore, base + 2}, {MemNone, 0}, {MemNone, 0},
	}
	if len(recs) != len(want) {
		t.Fatalf("retired %d, want %d", len(recs), len(want))
	}
	for i, w := range want {
		if recs[i].Mem != w.kind || (w.kind != MemNone && recs[i].MemAddr != w.addr) {
			t.Errorf("rec[%d] = kind %d addr %#x, want %d %#x",
				i, recs[i].Mem, recs[i].MemAddr, w.kind, w.addr)
		}
	}
}
