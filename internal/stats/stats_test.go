package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header = %q", lines[1])
	}
	// The value column must start at the same offset in every row.
	idx := strings.Index(lines[3], "1")
	if got := strings.Index(lines[4], "22"); got != idx {
		t.Errorf("column misaligned: %d vs %d\n%s", got, idx, out)
	}
}

func TestTableRowPanicsOnExtraCells(t *testing.T) {
	tb := NewTable("", "one")
	defer func() {
		if recover() == nil {
			t.Error("no panic on extra cells")
		}
	}()
	tb.AddRow("a", "b")
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "s", "f", "i", "u")
	tb.AddRowf("x", 1.234, 42, uint64(7))
	out := tb.String()
	for _, want := range []string{"x", "1.23", "42", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure(t *testing.T) {
	f := &Figure{Title: "Fig", XLabel: "depth", X: []float64{0, 1, 2}}
	f.Add("a", []float64{1.5, 2.5, 3.5})
	f.Add("b", []float64{9, 8, 7})
	out := f.String()
	for _, want := range []string{"depth", "a", "b", "1.50", "8.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out)
		}
	}
}

func TestFigureAddPanicsOnLengthMismatch(t *testing.T) {
	f := &Figure{X: []float64{0, 1}}
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatched series")
		}
	}()
	f.Add("bad", []float64{1})
}

func TestMeans(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{1, 0}); got != 0 {
		t.Errorf("GeoMean with zero = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(12.345) != "12.35%" {
		t.Errorf("Pct = %q", Pct(12.345))
	}
	if F2(1.0/3) != "0.33" {
		t.Errorf("F2 = %q", F2(1.0/3))
	}
	if trimFloat(3) != "3" || trimFloat(2.5) != "2.5" {
		t.Errorf("trimFloat: %q %q", trimFloat(3), trimFloat(2.5))
	}
}
