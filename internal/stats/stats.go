// Package stats provides the small numeric and text-rendering helpers
// shared by the experiment harness: aligned tables for the paper's
// tables and column-formatted series for its figures.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table renders rows of cells with aligned columns.
type Table struct {
	Title string
	cols  []string
	rows  [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, cols: cols}
}

// AddRow appends a row; missing cells render empty, extra cells panic.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.cols) {
		panic(fmt.Sprintf("stats: row has %d cells, table has %d columns", len(cells), len(t.cols)))
	}
	row := make([]string, len(t.cols))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: strings pass through,
// float64 render with two decimals, integers in decimal.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			out = append(out, v)
		case float64:
			out = append(out, F2(v))
		case int:
			out = append(out, fmt.Sprintf("%d", v))
		case uint64:
			out = append(out, fmt.Sprintf("%d", v))
		default:
			out = append(out, fmt.Sprint(v))
		}
	}
	t.AddRow(out...)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.cols))
	for i, c := range t.cols {
		width[i] = len(c)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.cols)
	total := len(t.cols) - 1
	for _, w := range width {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one line of a figure.
type Series struct {
	Name string
	Y    []float64
}

// Figure renders several series against a shared X axis as aligned
// columns — the text equivalent of the paper's line graphs.
type Figure struct {
	Title  string
	XLabel string
	X      []float64
	Series []Series
}

// Add appends a series; its length must match X.
func (f *Figure) Add(name string, y []float64) {
	if len(y) != len(f.X) {
		panic(fmt.Sprintf("stats: series %q has %d points, X has %d", name, len(y), len(f.X)))
	}
	f.Series = append(f.Series, Series{Name: name, Y: y})
}

// String renders the figure as a table: one row per X value, one column
// per series.
func (f *Figure) String() string {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	t := NewTable(f.Title, cols...)
	for i, x := range f.X {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			row = append(row, F2(s.Y[i]))
		}
		t.AddRow(row...)
	}
	return t.String()
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// F2 formats a float with two decimals.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }

// Pct formats a percentage with two decimals and a % sign.
func Pct(x float64) string { return fmt.Sprintf("%.2f%%", x) }

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values (0 if any value
// is non-positive or the slice is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
