// Package cc implements PTC, a small C-like language compiled to PT32
// assembly. The paper's benchmarks were C programs compiled for
// SimpleScalar; PTC plays the same role for this reproduction's
// substrate: workloads and examples can be written in a readable
// high-level form and lowered to the ISA the front-end models consume.
//
// The language: 32-bit words everywhere, global scalars and arrays,
// functions with up to four word parameters, locals, recursion, the
// usual expression operators, if/else, while, return, and the built-ins
// out(x) (emit to the simulator output channel) and halt().
//
//	var seen[128];
//
//	func collatz(n) {
//	    var steps = 0;
//	    while (n != 1) {
//	        if (n & 1) { n = 3*n + 1; } else { n = n >> 1; }
//	        steps = steps + 1;
//	    }
//	    return steps;
//	}
//
//	func main() {
//	    var i = 1;
//	    var total = 0;
//	    while (i <= 100) { total = total + collatz(i); i = i + 1; }
//	    out(total);
//	}
package cc

import "fmt"

// tokKind enumerates PTC token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // operators and delimiters, text in tok.text
	tokKeyword
)

var keywords = map[string]bool{
	"var": true, "func": true, "if": true, "else": true, "for": true,
	"while": true, "return": true, "break": true, "continue": true,
}

type token struct {
	kind tokKind
	text string
	num  int64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokNumber:
		return fmt.Sprintf("%d", t.num)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// Error is a compile error with a source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("cc: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// lexer splits PTC source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// twoCharOps are the multi-character operators, longest match first.
var twoCharOps = []string{"<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			depth := l.pos
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos+1 >= len(l.src) {
				return token{}, errf(l.line, "unterminated block comment starting at byte %d", depth)
			}
			l.pos += 2
		default:
			return l.lexToken()
		}
	}
	return token{kind: tokEOF, line: l.line}, nil
}

func (l *lexer) lexToken() (token, error) {
	c := l.src[l.pos]
	switch {
	case isDigit(c):
		return l.lexNumber()
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: l.line}, nil
	}
	for _, op := range twoCharOps {
		if len(l.src)-l.pos >= len(op) && l.src[l.pos:l.pos+len(op)] == op {
			l.pos += len(op)
			return token{kind: tokPunct, text: op, line: l.line}, nil
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>',
		'=', '(', ')', '{', '}', '[', ']', ',', ';':
		l.pos++
		return token{kind: tokPunct, text: string(c), line: l.line}, nil
	}
	return token{}, errf(l.line, "unexpected character %q", c)
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	base := int64(10)
	if l.src[l.pos] == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
		base = 16
		l.pos += 2
	}
	var v int64
	digits := 0
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			d = -1
		}
		if d < 0 {
			break
		}
		v = v*base + d
		if v > 1<<32 {
			return token{}, errf(l.line, "number constant too large")
		}
		digits++
		l.pos++
	}
	if digits == 0 {
		return token{}, errf(l.line, "malformed number %q", l.src[start:l.pos])
	}
	if l.pos < len(l.src) && isIdentStart(l.src[l.pos]) {
		return token{}, errf(l.line, "malformed number: identifier character after digits")
	}
	return token{kind: tokNumber, num: v, line: l.line}, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isIdentChar(c byte) bool  { return isIdentStart(c) || isDigit(c) }

// lexAll tokenises the whole source (EOF token included).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
