package cc

import (
	"strings"
	"testing"

	"pathtrace/internal/sim"
)

// runPTC compiles and executes a PTC program, returning its OUT stream.
func runPTC(t *testing.T, src string) []uint32 {
	t.Helper()
	prog, err := CompileProgram(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cpu := sim.MustNew(prog)
	if err := cpu.Run(50_000_000, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !cpu.Halted() {
		t.Fatal("program did not halt")
	}
	return cpu.Output
}

func wantOut(t *testing.T, got []uint32, want ...uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("output[%d] = %d (%#x), want %d", i, got[i], got[i], want[i])
		}
	}
}

func TestArithmeticAndPrecedence(t *testing.T) {
	out := runPTC(t, `
func main() {
    out(1 + 2 * 3);          // 7
    out((1 + 2) * 3);        // 9
    out(10 - 3 - 2);         // 5 (left assoc)
    out(100 / 10 / 2);       // 5
    out(17 % 5);             // 2
    out(1 << 4 | 3);         // 19
    out(0xff & 0x0f ^ 1);    // 14
    out(-5 + 3);             // -2
    out(~0);                 // 0xffffffff
    out(!0 + !7);            // 1
}`)
	neg2 := uint32(0xfffffffe)
	wantOut(t, out, 7, 9, 5, 5, 2, 19, 14, neg2, 0xffffffff, 1)
}

func TestComparisonsSignedness(t *testing.T) {
	out := runPTC(t, `
func main() {
    out(3 < 5);
    out(5 < 3);
    out(5 <= 5);
    out(5 >= 6);
    out(4 == 4);
    out(4 != 4);
    out(-1 < 1);             // signed compare
    out(2 > -7);
}`)
	wantOut(t, out, 1, 0, 1, 0, 1, 0, 1, 1)
}

func TestShortCircuit(t *testing.T) {
	// g is incremented by calls; short-circuiting must skip them.
	out := runPTC(t, `
var g = 0;

func bump() { g = g + 1; return 1; }

func main() {
    out(0 && bump());        // 0, bump not called
    out(g);                  // 0
    out(1 || bump());        // 1, bump not called
    out(g);                  // 0
    out(1 && bump());        // 1, bump called
    out(g);                  // 1
    out(0 || bump());        // 1, bump called
    out(g);                  // 2
    out(7 && 9);             // normalised to 1
}`)
	wantOut(t, out, 0, 0, 1, 0, 1, 1, 1, 2, 1)
}

func TestControlFlow(t *testing.T) {
	out := runPTC(t, `
func main() {
    var i = 0;
    var sum = 0;
    while (i < 10) {
        i = i + 1;
        if (i == 3) { continue; }
        if (i > 8) { break; }
        sum = sum + i;
    }
    out(sum);                // 1+2+4+5+6+7+8 = 33
    if (sum == 33) { out(1); } else { out(0); }
    if (sum != 33) { out(0); } else if (sum > 30) { out(2); } else { out(3); }
}`)
	wantOut(t, out, 33, 1, 2)
}

func TestFunctionsAndRecursion(t *testing.T) {
	out := runPTC(t, `
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}

func max(a, b) { if (a > b) { return a; } return b; }

func main() {
    out(fib(10));            // 55
    out(fib(15));            // 610
    out(max(3, 9));
    out(max(max(1, 5), max(2, 4)));  // nested calls in args
}`)
	wantOut(t, out, 55, 610, 9, 5)
}

func TestGlobalsAndArrays(t *testing.T) {
	out := runPTC(t, `
var total = 5;
var seen[16];

func mark(i) { seen[i] = seen[i] + 1; return seen[i]; }

func main() {
    var i = 0;
    while (i < 16) { seen[i] = i * i; i = i + 1; }
    out(seen[0] + seen[3] + seen[15]);  // 0+9+225 = 234
    total = total + seen[4];            // 5+16 = 21
    out(total);
    out(mark(7));                       // 49+1 = 50
    out(mark(7));                       // 51
}`)
	wantOut(t, out, 234, 21, 50, 51)
}

func TestCollatzProgram(t *testing.T) {
	out := runPTC(t, `
func collatz(n) {
    var steps = 0;
    while (n != 1) {
        if (n & 1) { n = 3*n + 1; } else { n = n >> 1; }
        steps = steps + 1;
    }
    return steps;
}

func main() {
    var i = 1;
    var total = 0;
    while (i <= 100) { total = total + collatz(i); i = i + 1; }
    out(total);
}`)
	// Independently computed: total collatz steps for 1..100.
	var want uint32
	for i := 1; i <= 100; i++ {
		n := uint32(i)
		for n != 1 {
			if n&1 == 1 {
				n = 3*n + 1
			} else {
				n >>= 1
			}
			want++
		}
	}
	wantOut(t, out, want)
}

func TestSievePTC(t *testing.T) {
	out := runPTC(t, `
var flags[10000];

func main() {
    var count = 0;
    var i = 2;
    while (i < 10000) {
        if (flags[i] == 0) {
            count = count + 1;
            var j = i + i;
            while (j < 10000) { flags[j] = 1; j = j + i; }
        }
        i = i + 1;
    }
    out(count);
}`)
	wantOut(t, out, 1229)
}

func TestQueensPTC(t *testing.T) {
	// Bitboard queens via recursion, matching the xlisp workload's count.
	out := runPTC(t, `
var full = 127;   // 7 columns

func solve(cols, d1, d2) {
    if (cols == full) { return 1; }
    var count = 0;
    var avail = ~(cols | d1 | d2) & full;
    while (avail != 0) {
        var bit = avail & (-avail);
        avail = avail ^ bit;
        count = count + solve(cols | bit, ((d1 | bit) << 1) & full, (d2 | bit) >> 1);
    }
    return count;
}

func main() { out(solve(0, 0, 0)); }`)
	wantOut(t, out, 40)
}

func TestDivByZeroSemantics(t *testing.T) {
	out := runPTC(t, `
func main() {
    var z = 0;
    out(7 / z);   // PT32 defines division by zero as 0
    out(7 % z);
}`)
	wantOut(t, out, 0, 0)
}

func TestHaltBuiltin(t *testing.T) {
	out := runPTC(t, `
func main() {
    out(1);
    halt();
    out(2);      // unreachable
}`)
	wantOut(t, out, 1)
}

func TestUnsignedShiftRight(t *testing.T) {
	out := runPTC(t, `
func main() {
    var x = 0 - 4;           // 0xfffffffc
    out(x >> 1);             // logical shift: 0x7ffffffe
}`)
	wantOut(t, out, 0x7ffffffe)
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"no main", `func f() {}`, "no main"},
		{"main params", `func main(x) {}`, "main must take no parameters"},
		{"undeclared var", `func main() { out(x); }`, "undeclared variable"},
		{"undeclared fn", `func main() { f(); }`, "undeclared function"},
		{"arity", `func f(a) { return a; } func main() { f(1, 2); }`, "takes 1 argument"},
		{"dup global", `var x; var x; func main() {}`, "duplicate global"},
		{"dup func", `func f() {} func f() {} func main() {}`, "duplicate function"},
		{"dup local", `func main() { var x = 1; var x = 2; }`, "duplicate local"},
		{"dup param", `func f(a, a) {} func main() {}`, "duplicate parameter"},
		{"too many params", `func f(a, b, c, d, e) {} func main() {}`, "max 4"},
		{"break outside", `func main() { break; }`, "break outside"},
		{"continue outside", `func main() { continue; }`, "continue outside"},
		{"array no index", `var a[4]; func main() { out(a); }`, "without an index"},
		{"scalar indexed", `var x; func main() { out(x[0]); }`, "not a global array"},
		{"assign array whole", `var a[4]; func main() { a = 3; }`, "cannot assign to array"},
		{"builtin arity", `func main() { out(1, 2); }`, "out takes 1"},
		{"builtin name", `func out() {} func main() {}`, "built-in name"},
		{"global builtin", `var halt; func main() {}`, "built-in name"},
		{"parse junk", `func main() { 1 +; }`, "expected expression"},
		{"unterminated block", `func main() {`, "unterminated block"},
		{"bad char", "func main() { out(1 $ 2); }", "unexpected character"},
		{"bad number", `func main() { out(12ab); }`, "malformed number"},
		{"huge number", `func main() { out(99999999999); }`, "too large"},
		{"unterminated comment", "func main() { /* forever", "unterminated block comment"},
		{"array read as stmt", `var a[4]; func main() { a[0]; }`, "expected"},
		{"top level junk", `wibble`, "expected 'var' or 'func'"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatalf("compiled without error, want %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestErrorsCarryLines(t *testing.T) {
	_, err := Compile("func main() {\n  var x = 1;\n  out(y);\n}")
	ce, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ce.Line != 3 {
		t.Errorf("error line = %d, want 3", ce.Line)
	}
}

func TestExpressionDepthLimit(t *testing.T) {
	// Build a right-nested expression deeper than the register budget.
	expr := "1"
	for i := 0; i < 12; i++ {
		expr = "1 + (" + expr + ")"
	}
	_, err := Compile("func main() { out(" + expr + "); }")
	if err == nil || !strings.Contains(err.Error(), "too deep") {
		t.Errorf("deep expression error = %v", err)
	}
	// Left-leaning chains stay shallow and must compile.
	left := strings.Repeat("1 + ", 100) + "1"
	if _, err := Compile("func main() { out(" + left + "); }"); err != nil {
		t.Errorf("left-leaning chain rejected: %v", err)
	}
}

func TestCommentsAndFormats(t *testing.T) {
	out := runPTC(t, `
// line comment
/* block
   comment */
func main() {
    out(0x10);   // hex
    out(10);     /* inline */ out(0xFF);
}`)
	wantOut(t, out, 16, 10, 255)
}

func TestGlobalInitializers(t *testing.T) {
	out := runPTC(t, `
var a = 42;
var b = -7;
var c;

func main() { out(a); out(b); out(c); }`)
	wantOut(t, out, 42, uint32(0xfffffff9), 0)
}

func TestNestedCallArguments(t *testing.T) {
	out := runPTC(t, `
func add(a, b) { return a + b; }
func mul(a, b) { return a * b; }

func main() {
    out(add(mul(2, 3), mul(4, 5)));          // 26
    out(add(add(1, add(2, 3)), add(4, 5)));  // 15
    out(mul(add(1, 2), add(add(1, 1), 1)));  // 9
}`)
	wantOut(t, out, 26, 15, 9)
}

func TestForLoops(t *testing.T) {
	out := runPTC(t, `
func main() {
    var sum = 0;
    for (var i = 0; i < 10; i += 1) { sum += i; }
    out(sum);                         // 45

    // continue must run the step.
    var evens = 0;
    for (var j = 0; j < 10; j += 1) {
        if (j & 1) { continue; }
        evens += 1;
    }
    out(evens);                       // 5

    // empty header parts.
    var k = 0;
    for (;;) {
        k += 1;
        if (k == 7) { break; }
    }
    out(k);                           // 7

    // init/step without var.
    var m;
    for (m = 10; m > 0; m -= 2) {}
    out(m);                           // 0
}`)
	wantOut(t, out, 45, 5, 7, 0)
}

func TestCompoundAssignment(t *testing.T) {
	out := runPTC(t, `
var g = 100;
var a[4];

func main() {
    var x = 10;
    x += 5;  out(x);   // 15
    x -= 3;  out(x);   // 12
    x *= 4;  out(x);   // 48
    x /= 5;  out(x);   // 9
    x %= 4;  out(x);   // 1
    x |= 6;  out(x);   // 7
    x &= 5;  out(x);   // 5
    x ^= 1;  out(x);   // 4
    x <<= 3; out(x);   // 32
    x >>= 2; out(x);   // 8

    g += 11; out(g);   // 111 (global)

    a[2] = 5;
    a[2] += 37;
    out(a[2]);         // 42
    a[1 + 1] *= 2;
    out(a[2]);         // 84
}`)
	wantOut(t, out, 15, 12, 48, 9, 1, 7, 5, 4, 32, 8, 111, 42, 84)
}

func TestForErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"var in step", `func main() { for (;; var x = 1) {} }`, "may not declare"},
		{"break in step pos", `func main() { for (break;;) {} }`, "expected"},
		{"missing semis", `func main() { for (var i = 0) {} }`, "expected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatalf("compiled, want error with %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %q, want %q", err, tc.wantSub)
			}
		})
	}
}

func TestNestedForLoops(t *testing.T) {
	out := runPTC(t, `
func main() {
    var hits = 0;
    for (var i = 0; i < 8; i += 1) {
        for (var j = 0; j < 8; j += 1) {
            if ((i ^ j) == 5) { hits += 1; }
        }
    }
    out(hits);   // each i has exactly one j with i^j==5
}`)
	wantOut(t, out, 8)
}
