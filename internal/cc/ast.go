package cc

// The PTC abstract syntax tree. All values are 32-bit words.

// Program is a parsed compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a global scalar (Size 0) or array (Size > 0).
type GlobalDecl struct {
	Name string
	Size int64 // words; 0 = scalar
	Init int64 // scalar initial value
	Line int
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *Block
	Line   int

	// filled by the checker:
	locals []string // declaration order, including params
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Block is a brace-delimited statement list with its own scope.
type Block struct {
	Stmts []Stmt
	Line  int
}

// VarStmt declares a local with an initial value.
type VarStmt struct {
	Name string
	Init Expr
	Line int
}

// AssignStmt stores to a local/global scalar or a global array element.
type AssignStmt struct {
	Name  string
	Index Expr // nil for scalars
	Value Expr
	Line  int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Line int
}

// ForStmt is a C-style for loop. Init and Step may be nil; a nil Cond
// means an unconditional loop (exit via break/return).
type ForStmt struct {
	Init Stmt // VarStmt, AssignStmt or ExprStmt
	Cond Expr
	Step Stmt // AssignStmt or ExprStmt
	Body *Block
	Line int
}

// ReturnStmt returns a value (Value may be nil -> 0).
type ReturnStmt struct {
	Value Expr
	Line  int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Line int }

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	X    Expr
	Line int
}

func (*Block) stmtNode()        {}
func (*VarStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// NumExpr is an integer literal.
type NumExpr struct {
	Val  int64
	Line int
}

// VarExpr reads a local or global scalar.
type VarExpr struct {
	Name string
	Line int
}

// IndexExpr reads a global array element.
type IndexExpr struct {
	Name  string
	Index Expr
	Line  int
}

// CallExpr calls a function or built-in (out, halt).
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// UnaryExpr applies -, !, or ~.
type UnaryExpr struct {
	Op   string
	X    Expr
	Line int
}

// BinaryExpr applies a binary operator. && and || short-circuit.
type BinaryExpr struct {
	Op   string
	L, R Expr
	Line int
}

func (*NumExpr) exprNode()    {}
func (*VarExpr) exprNode()    {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
