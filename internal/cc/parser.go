package cc

// Recursive-descent parser with precedence climbing for expressions.

type parser struct {
	toks []token
	pos  int
}

// Parse builds the AST for a PTC compilation unit.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF, "") {
		switch {
		case p.at(tokKeyword, "var"):
			g, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case p.at(tokKeyword, "func"):
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, errf(p.cur().line, "expected 'var' or 'func' at top level, got %s", p.cur())
		}
	}
	return prog, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text, what string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		return t, errf(t.line, "expected %s, got %s", what, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) ident(what string) (string, int, error) {
	t, err := p.expect(tokIdent, "", what)
	return t.text, t.line, err
}

// globalDecl parses `var name;`, `var name = N;` or `var name[N];`.
func (p *parser) globalDecl() (*GlobalDecl, error) {
	p.pos++ // 'var'
	name, line, err := p.ident("global name")
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Name: name, Line: line}
	if p.accept(tokPunct, "[") {
		t, err := p.expect(tokNumber, "", "array size")
		if err != nil {
			return nil, err
		}
		if t.num < 1 || t.num > 1<<20 {
			return nil, errf(t.line, "array size %d outside [1, 2^20]", t.num)
		}
		g.Size = t.num
		if _, err := p.expect(tokPunct, "]", "']'"); err != nil {
			return nil, err
		}
	} else if p.accept(tokPunct, "=") {
		neg := p.accept(tokPunct, "-")
		t, err := p.expect(tokNumber, "", "initial value")
		if err != nil {
			return nil, err
		}
		g.Init = t.num
		if neg {
			g.Init = -g.Init
		}
	}
	if _, err := p.expect(tokPunct, ";", "';'"); err != nil {
		return nil, err
	}
	return g, nil
}

// funcDecl parses `func name(a, b) { ... }`.
func (p *parser) funcDecl() (*FuncDecl, error) {
	p.pos++ // 'func'
	name, line, err := p.ident("function name")
	if err != nil {
		return nil, err
	}
	f := &FuncDecl{Name: name, Line: line}
	if _, err := p.expect(tokPunct, "(", "'('"); err != nil {
		return nil, err
	}
	for !p.at(tokPunct, ")") {
		if len(f.Params) > 0 {
			if _, err := p.expect(tokPunct, ",", "','"); err != nil {
				return nil, err
			}
		}
		param, _, err := p.ident("parameter name")
		if err != nil {
			return nil, err
		}
		f.Params = append(f.Params, param)
	}
	p.pos++ // ')'
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) block() (*Block, error) {
	open, err := p.expect(tokPunct, "{", "'{'")
	if err != nil {
		return nil, err
	}
	b := &Block{Line: open.line}
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, errf(open.line, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.pos++ // '}'
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(tokPunct, "{"):
		return p.block()
	case p.at(tokKeyword, "var"):
		p.pos++
		name, line, err := p.ident("local name")
		if err != nil {
			return nil, err
		}
		var init Expr = &NumExpr{Val: 0, Line: line}
		if p.accept(tokPunct, "=") {
			init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ";", "';'"); err != nil {
			return nil, err
		}
		return &VarStmt{Name: name, Init: init, Line: line}, nil
	case p.at(tokKeyword, "if"):
		p.pos++
		cond, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		s := &IfStmt{Cond: cond, Then: then, Line: t.line}
		if p.accept(tokKeyword, "else") {
			if p.at(tokKeyword, "if") {
				// else if: wrap in a block.
				inner, err := p.stmt()
				if err != nil {
					return nil, err
				}
				s.Else = &Block{Stmts: []Stmt{inner}, Line: p.cur().line}
			} else {
				s.Else, err = p.block()
				if err != nil {
					return nil, err
				}
			}
		}
		return s, nil
	case p.at(tokKeyword, "for"):
		return p.forStmt()
	case p.at(tokKeyword, "while"):
		p.pos++
		cond, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.line}, nil
	case p.at(tokKeyword, "return"):
		p.pos++
		s := &ReturnStmt{Line: t.line}
		if !p.at(tokPunct, ";") {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Value = v
		}
		if _, err := p.expect(tokPunct, ";", "';'"); err != nil {
			return nil, err
		}
		return s, nil
	case p.at(tokKeyword, "break"):
		p.pos++
		if _, err := p.expect(tokPunct, ";", "';'"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.line}, nil
	case p.at(tokKeyword, "continue"):
		p.pos++
		if _, err := p.expect(tokPunct, ";", "';'"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.line}, nil
	default:
		st, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";", "';'"); err != nil {
			return nil, err
		}
		return st, nil
	}
}

// forStmt parses `for (init; cond; step) { body }`; each header part
// may be empty.
func (p *parser) forStmt() (Stmt, error) {
	t := p.cur()
	p.pos++ // 'for'
	if _, err := p.expect(tokPunct, "(", "'('"); err != nil {
		return nil, err
	}
	f := &ForStmt{Line: t.line}
	var err error
	if !p.at(tokPunct, ";") {
		f.Init, err = p.simpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";", "';'"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ";") {
		f.Cond, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";", "';'"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ")") {
		f.Step, err = p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, isVar := f.Step.(*VarStmt); isVar {
			return nil, errf(t.line, "for-step may not declare a variable")
		}
	}
	if _, err := p.expect(tokPunct, ")", "')'"); err != nil {
		return nil, err
	}
	f.Body, err = p.block()
	if err != nil {
		return nil, err
	}
	return f, nil
}

// simpleStmt parses a statement usable in a for header: a var
// declaration, an assignment (plain or compound, scalar or array
// element), or an expression. It does not consume a trailing ';'.
func (p *parser) simpleStmt() (Stmt, error) {
	t := p.cur()
	if p.at(tokKeyword, "var") {
		p.pos++
		name, line, err := p.ident("local name")
		if err != nil {
			return nil, err
		}
		var init Expr = &NumExpr{Val: 0, Line: line}
		if p.accept(tokPunct, "=") {
			init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		return &VarStmt{Name: name, Init: init, Line: line}, nil
	}
	if t.kind == tokIdent {
		return p.identSimple()
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: x, Line: t.line}, nil
}

// compoundOps maps `op=` tokens to the underlying binary operator.
var compoundOps = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}

// identSimple parses statements that begin with an identifier (without
// the trailing ';'): `x = e`, `x op= e`, `a[i] = e`, `a[i] op= e`, or
// an expression such as `f(1)`.
//
// In a compound array assignment the index expression is evaluated
// twice (once for the read, once for the store); keep such indexes free
// of side effects.
func (p *parser) identSimple() (Stmt, error) {
	t := p.cur()
	next := p.toks[p.pos+1]
	if next.kind == tokPunct {
		if next.text == "=" {
			p.pos += 2
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Name: t.text, Value: v, Line: t.line}, nil
		}
		if op, ok := compoundOps[next.text]; ok {
			p.pos += 2
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			read := &VarExpr{Name: t.text, Line: t.line}
			return &AssignStmt{Name: t.text,
				Value: &BinaryExpr{Op: op, L: read, R: v, Line: t.line},
				Line:  t.line}, nil
		}
		if next.text == "[" {
			// `a[i] = e`, `a[i] op= e`, or the error case of a bare
			// array read used as a statement.
			p.pos += 2
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]", "']'"); err != nil {
				return nil, err
			}
			if p.accept(tokPunct, "=") {
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				return &AssignStmt{Name: t.text, Index: idx, Value: v, Line: t.line}, nil
			}
			if op, ok := compoundOps[p.cur().text]; ok && p.cur().kind == tokPunct {
				p.pos++
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				read := &IndexExpr{Name: t.text, Index: idx, Line: t.line}
				return &AssignStmt{Name: t.text, Index: idx,
					Value: &BinaryExpr{Op: op, L: read, R: v, Line: t.line},
					Line:  t.line}, nil
			}
			return nil, errf(t.line, "expected '=' or 'op=' (array reads are expressions; only stores are statements)")
		}
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: x, Line: t.line}, nil
}

func (p *parser) parenExpr() (Expr, error) {
	if _, err := p.expect(tokPunct, "(", "'('"); err != nil {
		return nil, err
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")", "')'"); err != nil {
		return nil, err
	}
	return x, nil
}

// Operator precedence, loosest first (C-like).
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (Expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return left, nil
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.pos++
		right, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.text, L: left, R: right, Line: t.line}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!" || t.text == "~") {
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.text, X: x, Line: t.line}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		return &NumExpr{Val: t.num, Line: t.line}, nil
	case t.kind == tokPunct && t.text == "(":
		return p.parenExpr()
	case t.kind == tokIdent:
		p.pos++
		switch {
		case p.accept(tokPunct, "("):
			call := &CallExpr{Name: t.text, Line: t.line}
			for !p.at(tokPunct, ")") {
				if len(call.Args) > 0 {
					if _, err := p.expect(tokPunct, ",", "','"); err != nil {
						return nil, err
					}
				}
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
			}
			p.pos++ // ')'
			return call, nil
		case p.accept(tokPunct, "["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]", "']'"); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.text, Index: idx, Line: t.line}, nil
		default:
			return &VarExpr{Name: t.text, Line: t.line}, nil
		}
	default:
		return nil, errf(t.line, "expected expression, got %s", t)
	}
}
