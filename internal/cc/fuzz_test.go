package cc

import (
	"os"
	"path/filepath"
	"testing"

	"pathtrace/internal/asm"
)

// FuzzParse feeds arbitrary source to the PTC compiler: it must compile
// or report an error, never panic. When it does compile, the emitted
// assembly must assemble — a compile that produces unassemblable text
// is a codegen bug, not a fuzz artifact.
func FuzzParse(f *testing.F) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "examples", "ptc", "*.ptc"))
	for _, p := range paths {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(string(b))
		}
	}
	f.Add("func main() { out(42); }")
	f.Add("var g int;\nfunc main() { g = 1; while (g < 10) { g = g + g; } out(g); }")
	f.Add("func f(x int) int { if (x < 2) { return x; } return f(x-1) + f(x-2); }\nfunc main() { out(f(10)); }")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<15 {
			t.Skip("oversized input")
		}
		out, err := Compile(src)
		if err != nil {
			return
		}
		if _, aerr := asm.Assemble(out); aerr != nil {
			t.Fatalf("compiled output does not assemble: %v\nsource:\n%s\nasm:\n%s", aerr, src, out)
		}
	})
}
