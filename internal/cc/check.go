package cc

import "fmt"

// MaxParams is the number of word parameters a PTC function may take
// (the a0..a3 argument registers).
const MaxParams = 4

// builtins maps built-in functions to their arity.
var builtins = map[string]int{
	"out":  1, // emit a word to the simulator output channel
	"halt": 0, // stop the program
}

// checker resolves names and validates the program.
type checker struct {
	globals map[string]*GlobalDecl
	funcs   map[string]*FuncDecl
}

// Check validates a parsed program: unique names, resolvable
// references, call arities, break/continue placement, and a main()
// entry point with no parameters.
func Check(prog *Program) error {
	c := &checker{
		globals: map[string]*GlobalDecl{},
		funcs:   map[string]*FuncDecl{},
	}
	for _, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return errf(g.Line, "duplicate global %q", g.Name)
		}
		if _, isBuiltin := builtins[g.Name]; isBuiltin {
			return errf(g.Line, "%q is a built-in name", g.Name)
		}
		c.globals[g.Name] = g
	}
	for _, f := range prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			return errf(f.Line, "duplicate function %q", f.Name)
		}
		if _, isBuiltin := builtins[f.Name]; isBuiltin {
			return errf(f.Line, "%q is a built-in name", f.Name)
		}
		if _, clash := c.globals[f.Name]; clash {
			return errf(f.Line, "function %q collides with a global", f.Name)
		}
		if len(f.Params) > MaxParams {
			return errf(f.Line, "function %q has %d parameters; max %d", f.Name, len(f.Params), MaxParams)
		}
		c.funcs[f.Name] = f
	}
	main, ok := c.funcs["main"]
	if !ok {
		return fmt.Errorf("cc: no main function")
	}
	if len(main.Params) != 0 {
		return errf(main.Line, "main must take no parameters")
	}
	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

// funcScope tracks a function's flat local namespace (PTC locals are
// function-scoped: a name may be declared once per function).
type funcScope struct {
	c      *checker
	fn     *FuncDecl
	locals map[string]bool
	loops  int
}

func (c *checker) checkFunc(f *FuncDecl) error {
	s := &funcScope{c: c, fn: f, locals: map[string]bool{}}
	for _, p := range f.Params {
		if s.locals[p] {
			return errf(f.Line, "duplicate parameter %q", p)
		}
		s.locals[p] = true
		f.locals = append(f.locals, p)
	}
	return s.block(f.Body)
}

func (s *funcScope) block(b *Block) error {
	for _, st := range b.Stmts {
		if err := s.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (s *funcScope) stmt(st Stmt) error {
	switch v := st.(type) {
	case *Block:
		return s.block(v)
	case *VarStmt:
		if err := s.expr(v.Init); err != nil {
			return err
		}
		if s.locals[v.Name] {
			return errf(v.Line, "duplicate local %q (PTC locals are function-scoped)", v.Name)
		}
		if _, isBuiltin := builtins[v.Name]; isBuiltin {
			return errf(v.Line, "%q is a built-in name", v.Name)
		}
		s.locals[v.Name] = true
		s.fn.locals = append(s.fn.locals, v.Name)
		return nil
	case *AssignStmt:
		if v.Index != nil {
			g, ok := s.c.globals[v.Name]
			if !ok || g.Size == 0 {
				return errf(v.Line, "%q is not a global array", v.Name)
			}
			if err := s.expr(v.Index); err != nil {
				return err
			}
		} else if !s.locals[v.Name] {
			g, ok := s.c.globals[v.Name]
			if !ok {
				return errf(v.Line, "assignment to undeclared variable %q", v.Name)
			}
			if g.Size != 0 {
				return errf(v.Line, "cannot assign to array %q without an index", v.Name)
			}
		}
		return s.expr(v.Value)
	case *IfStmt:
		if err := s.expr(v.Cond); err != nil {
			return err
		}
		if err := s.block(v.Then); err != nil {
			return err
		}
		if v.Else != nil {
			return s.block(v.Else)
		}
		return nil
	case *WhileStmt:
		if err := s.expr(v.Cond); err != nil {
			return err
		}
		s.loops++
		err := s.block(v.Body)
		s.loops--
		return err
	case *ForStmt:
		if v.Init != nil {
			if err := s.stmt(v.Init); err != nil {
				return err
			}
		}
		if v.Cond != nil {
			if err := s.expr(v.Cond); err != nil {
				return err
			}
		}
		if v.Step != nil {
			if err := s.stmt(v.Step); err != nil {
				return err
			}
		}
		s.loops++
		err := s.block(v.Body)
		s.loops--
		return err
	case *ReturnStmt:
		if v.Value != nil {
			return s.expr(v.Value)
		}
		return nil
	case *BreakStmt:
		if s.loops == 0 {
			return errf(v.Line, "break outside a loop")
		}
		return nil
	case *ContinueStmt:
		if s.loops == 0 {
			return errf(v.Line, "continue outside a loop")
		}
		return nil
	case *ExprStmt:
		return s.expr(v.X)
	default:
		return fmt.Errorf("cc: unknown statement %T", st)
	}
}

func (s *funcScope) expr(e Expr) error {
	switch v := e.(type) {
	case *NumExpr:
		return nil
	case *VarExpr:
		if s.locals[v.Name] {
			return nil
		}
		g, ok := s.c.globals[v.Name]
		if !ok {
			return errf(v.Line, "undeclared variable %q", v.Name)
		}
		if g.Size != 0 {
			return errf(v.Line, "array %q used without an index", v.Name)
		}
		return nil
	case *IndexExpr:
		g, ok := s.c.globals[v.Name]
		if !ok || g.Size == 0 {
			return errf(v.Line, "%q is not a global array", v.Name)
		}
		return s.expr(v.Index)
	case *CallExpr:
		if arity, isBuiltin := builtins[v.Name]; isBuiltin {
			if len(v.Args) != arity {
				return errf(v.Line, "%s takes %d argument(s), got %d", v.Name, arity, len(v.Args))
			}
		} else {
			f, ok := s.c.funcs[v.Name]
			if !ok {
				return errf(v.Line, "call to undeclared function %q", v.Name)
			}
			if len(v.Args) != len(f.Params) {
				return errf(v.Line, "%s takes %d argument(s), got %d", v.Name, len(f.Params), len(v.Args))
			}
		}
		for _, a := range v.Args {
			if err := s.expr(a); err != nil {
				return err
			}
		}
		return nil
	case *UnaryExpr:
		return s.expr(v.X)
	case *BinaryExpr:
		if err := s.expr(v.L); err != nil {
			return err
		}
		return s.expr(v.R)
	default:
		return fmt.Errorf("cc: unknown expression %T", e)
	}
}
