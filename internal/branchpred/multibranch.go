package branchpred

import (
	"fmt"

	"pathtrace/internal/isa"
	"pathtrace/internal/trace"
)

// This file implements the realizable multiple-branch predictors the
// paper's §2 surveys — the mechanisms the idealized sequential baseline
// upper-bounds:
//
//   - the multiported GAg of Yeh, Marr and Patt (ICS 1993), as used for
//     the original trace cache study (Rotenberg et al., MICRO-29): one
//     global history register indexes a PHT; to predict several
//     branches in one cycle the predictor reads counters for the
//     speculative history extensions, so later predictions in the
//     bundle see progressively less real history;
//   - the trace-oriented multiple-branch predictor of Patel, Friendly
//     and Patt (CSE-TR-342-97): the global history register XORed with
//     the address of the first instruction of the trace indexes a table
//     whose entries hold multiple two-bit counters, one per potential
//     branch slot — GSHARE-like accuracy with one access per trace.
//
// Both are driven at trace granularity: given the previous trace's end
// state they predict all conditional branches of the next trace at
// once, *without* seeing intermediate real outcomes (unlike the
// idealized sequential predictor, which does).

// MultiBranchPredictor predicts all conditional branches of a trace in
// a single cycle.
type MultiBranchPredictor interface {
	// PredictTrace returns predicted directions for up to
	// trace.DefaultMaxBranches conditional branches of the trace that
	// begins at startPC.
	PredictTrace(startPC uint32, n int) []bool
	// UpdateTrace reveals the actual outcomes; implementations train
	// their tables and advance the real history.
	UpdateTrace(startPC uint32, outcomes []bool)
	Name() string
}

// MultiStats counts trace-level accuracy of a multiple-branch
// predictor: a trace is mispredicted if any of its conditional branch
// predictions is wrong.
type MultiStats struct {
	Traces       uint64
	TraceMisp    uint64
	CondBranches uint64
	CondMisp     uint64
}

// TraceMissRate returns the per-trace misprediction rate in percent.
func (s MultiStats) TraceMissRate() float64 {
	if s.Traces == 0 {
		return 0
	}
	return 100 * float64(s.TraceMisp) / float64(s.Traces)
}

// BranchMissRate returns the per-branch misprediction rate in percent.
func (s MultiStats) BranchMissRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return 100 * float64(s.CondMisp) / float64(s.CondBranches)
}

// MultiGAg is the multiported GAg: the BHR indexes the PHT directly;
// the second and later predictions of a bundle extend the history with
// the just-made (speculative) predictions.
type MultiGAg struct {
	pht  *PHT
	hist uint32
	mask uint32
	bits int
	buf  []bool
}

// NewMultiGAg creates a multiported GAg with `bits` of global history.
func NewMultiGAg(bits int) (*MultiGAg, error) {
	pht, err := NewPHT(bits)
	if err != nil {
		return nil, err
	}
	return &MultiGAg{pht: pht, mask: 1<<bits - 1, bits: bits}, nil
}

// PredictTrace implements MultiBranchPredictor.
func (g *MultiGAg) PredictTrace(_ uint32, n int) []bool {
	g.buf = g.buf[:0]
	h := g.hist
	for i := 0; i < n; i++ {
		taken := g.pht.Predict(h)
		g.buf = append(g.buf, taken)
		h = (h<<1 | b2u(taken)) & g.mask
	}
	return g.buf
}

// UpdateTrace implements MultiBranchPredictor. Counters are trained at
// the indices the predictions were (or would have been) read from,
// using the *actual* intermediate outcomes, as the multiported
// implementations do at branch resolution.
func (g *MultiGAg) UpdateTrace(_ uint32, outcomes []bool) {
	h := g.hist
	for _, taken := range outcomes {
		g.pht.Update(h, taken)
		h = (h<<1 | b2u(taken)) & g.mask
	}
	g.hist = h
}

// Name implements MultiBranchPredictor.
func (g *MultiGAg) Name() string { return fmt.Sprintf("mgag-%d", g.bits) }

// PatelMulti is the trace-based multiple-branch predictor: the history
// register XORed with the trace's starting address selects an entry of
// per-slot two-bit counters, so all branches of the trace are predicted
// in one access.
type PatelMulti struct {
	entries [][]uint8 // [index][slot] two-bit counters
	hist    uint32
	mask    uint32
	bits    int
	slots   int
	buf     []bool
}

// NewPatelMulti creates the predictor with 1<<bits entries of `slots`
// counters each.
func NewPatelMulti(bits, slots int) (*PatelMulti, error) {
	if bits < 1 || bits > 24 {
		return nil, fmt.Errorf("branchpred: PatelMulti bits %d outside [1, 24]", bits)
	}
	if slots < 1 || slots > trace.DefaultMaxBranches {
		return nil, fmt.Errorf("branchpred: PatelMulti slots %d outside [1, %d]",
			slots, trace.DefaultMaxBranches)
	}
	entries := make([][]uint8, 1<<bits)
	backing := make([]uint8, (1<<bits)*slots)
	for i := range backing {
		backing[i] = 1 // weakly not taken
	}
	for i := range entries {
		entries[i], backing = backing[:slots:slots], backing[slots:]
	}
	return &PatelMulti{entries: entries, mask: uint32(1<<bits - 1), bits: bits, slots: slots}, nil
}

func (p *PatelMulti) index(startPC uint32) uint32 {
	return (startPC>>2 ^ p.hist) & p.mask
}

// PredictTrace implements MultiBranchPredictor.
func (p *PatelMulti) PredictTrace(startPC uint32, n int) []bool {
	e := p.entries[p.index(startPC)]
	p.buf = p.buf[:0]
	for i := 0; i < n && i < p.slots; i++ {
		p.buf = append(p.buf, e[i] >= 2)
	}
	for i := p.slots; i < n; i++ {
		p.buf = append(p.buf, false) // beyond the slot budget: static NT
	}
	return p.buf
}

// UpdateTrace implements MultiBranchPredictor.
func (p *PatelMulti) UpdateTrace(startPC uint32, outcomes []bool) {
	e := p.entries[p.index(startPC)]
	for i, taken := range outcomes {
		if i >= p.slots {
			break
		}
		c := &e[i]
		if taken {
			if *c < 3 {
				*c++
			}
		} else if *c > 0 {
			*c--
		}
	}
	for _, taken := range outcomes {
		p.hist = p.hist<<1 | b2u(taken)
	}
	p.hist &= p.mask
}

// Name implements MultiBranchPredictor.
func (p *PatelMulti) Name() string { return fmt.Sprintf("patel-%d/%d", p.bits, p.slots) }

// MultiBranchHarness drives a multiple-branch predictor over a trace
// stream and accounts trace-level accuracy. Direct targets are ideal
// (as with the sequential baseline); indirect targets use a shared
// correlated target cache; returns are perfect.
type MultiBranchHarness struct {
	pred   MultiBranchPredictor
	tcache *TargetCache
	stats  MultiStats
	outBuf []bool
}

// NewMultiBranchHarness wires a predictor to the standard target
// machinery.
func NewMultiBranchHarness(pred MultiBranchPredictor, indirectBits int) (*MultiBranchHarness, error) {
	if pred == nil {
		return nil, fmt.Errorf("branchpred: nil multi-branch predictor")
	}
	if indirectBits == 0 {
		indirectBits = 12
	}
	tc, err := NewTargetCache(indirectBits)
	if err != nil {
		return nil, err
	}
	return &MultiBranchHarness{pred: pred, tcache: tc}, nil
}

// ObserveTrace predicts the trace's conditional branches as a bundle
// and its indirect target (if any), then trains with the actual
// outcomes. Returns whether the whole trace was predicted correctly.
func (h *MultiBranchHarness) ObserveTrace(tr *trace.Trace) bool {
	h.outBuf = h.outBuf[:0]
	for _, b := range tr.Branches {
		if b.Ctrl == isa.CtrlCondDir {
			h.outBuf = append(h.outBuf, b.Taken)
		}
	}
	ok := true
	preds := h.pred.PredictTrace(tr.StartPC, len(h.outBuf))
	for i, taken := range h.outBuf {
		h.stats.CondBranches++
		if preds[i] != taken {
			h.stats.CondMisp++
			ok = false
		}
	}
	// Indirect terminal target, if any.
	for _, b := range tr.Branches {
		if b.Ctrl.Indirect() && b.Ctrl != isa.CtrlReturn {
			if t, valid := h.tcache.Predict(b.PC); !valid || t != b.Target {
				ok = false
			}
			h.tcache.Update(b.PC, b.Target)
		}
	}
	h.pred.UpdateTrace(tr.StartPC, h.outBuf)
	h.stats.Traces++
	if !ok {
		h.stats.TraceMisp++
	}
	return ok
}

// Stats returns the accumulated counters.
func (h *MultiBranchHarness) Stats() MultiStats { return h.stats }

// Name describes the wrapped predictor.
func (h *MultiBranchHarness) Name() string { return h.pred.Name() }
