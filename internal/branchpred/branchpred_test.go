package branchpred

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pathtrace/internal/isa"
	"pathtrace/internal/trace"
)

func TestPHTCounterSaturation(t *testing.T) {
	p, err := NewPHT(4)
	if err != nil {
		t.Fatal(err)
	}
	// Initial state: weakly not taken.
	if p.Predict(0) {
		t.Error("fresh PHT predicts taken")
	}
	// Two taken updates flip it; many more saturate.
	for i := 0; i < 10; i++ {
		p.Update(0, true)
	}
	if !p.Predict(0) {
		t.Error("saturated-taken PHT predicts not-taken")
	}
	// Needs two not-taken updates to flip back (hysteresis).
	p.Update(0, false)
	if !p.Predict(0) {
		t.Error("one not-taken flipped a saturated counter")
	}
	p.Update(0, false)
	if p.Predict(0) {
		t.Error("counter did not flip after two not-taken")
	}
	// Counters stay in range under arbitrary update sequences.
	f := func(ops []bool) bool {
		q, _ := NewPHT(2)
		for _, taken := range ops {
			q.Update(3, taken)
		}
		return q.ctrs[3] <= 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPHTValidation(t *testing.T) {
	if _, err := NewPHT(0); err == nil {
		t.Error("PHT bits 0 accepted")
	}
	if _, err := NewPHT(27); err == nil {
		t.Error("PHT bits 27 accepted")
	}
}

// loopPattern drives a predictor with a biased loop branch: taken
// n-1 times, then not taken, repeatedly.
func loopPattern(p ConditionalPredictor, pc uint32, n, iters int) (correct, total int) {
	for i := 0; i < iters; i++ {
		for j := 0; j < n; j++ {
			taken := j != n-1
			if p.Predict(pc) == taken {
				correct++
			}
			total++
			p.Update(pc, taken)
		}
	}
	return
}

func TestBimodalOnBiasedBranch(t *testing.T) {
	b, err := NewBimodal(10)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := loopPattern(b, 0x1000, 10, 100)
	// Bimodal gets the exit wrong each iteration, everything else right.
	if rate := float64(correct) / float64(total); rate < 0.85 {
		t.Errorf("bimodal accuracy %.2f on 90%% biased branch", rate)
	}
}

func TestGshareLearnsCorrelatedPattern(t *testing.T) {
	// A 4-iteration loop: with global history, the exit becomes
	// predictable; gshare should approach 100% in steady state.
	g := MustNewGshare(14)
	// Warm up.
	loopPattern(g, 0x1000, 4, 200)
	correct, total := loopPattern(g, 0x1000, 4, 200)
	if correct != total {
		t.Errorf("gshare steady state %d/%d on periodic pattern", correct, total)
	}
	// And it must beat bimodal on this pattern.
	b, _ := NewBimodal(14)
	loopPattern(b, 0x1000, 4, 200)
	bc, bt := loopPattern(b, 0x1000, 4, 200)
	if float64(correct)/float64(total) <= float64(bc)/float64(bt) {
		t.Errorf("gshare (%d/%d) not better than bimodal (%d/%d)", correct, total, bc, bt)
	}
}

func TestGAgLearnsGlobalPattern(t *testing.T) {
	g, err := NewGAg(12)
	if err != nil {
		t.Fatal(err)
	}
	loopPattern(g, 0x1000, 4, 200)
	correct, total := loopPattern(g, 0x1000, 4, 200)
	if correct != total {
		t.Errorf("GAg steady state %d/%d", correct, total)
	}
}

func TestPredictorNames(t *testing.T) {
	g := MustNewGshare(16)
	if g.Name() != "gshare-16" {
		t.Errorf("gshare name = %q", g.Name())
	}
	ga, _ := NewGAg(12)
	if ga.Name() != "gag-12" {
		t.Errorf("gag name = %q", ga.Name())
	}
	b, _ := NewBimodal(10)
	if b.Name() != "bimodal-10" {
		t.Errorf("bimodal name = %q", b.Name())
	}
}

func TestTargetCache(t *testing.T) {
	tc := MustNewTargetCache(8)
	if _, ok := tc.Predict(0x1000); ok {
		t.Error("empty cache predicted")
	}
	// Train an alternating target pattern; the target history must
	// disambiguate the two, which a plain PC-indexed BTB cannot.
	a, b := uint32(0x204), uint32(0x308)
	for i := 0; i < 20; i++ {
		tc.Update(0x1000, a)
		tc.Update(0x1000, b)
	}
	got1, ok1 := tc.Predict(0x1000) // after b, a follows
	tc.Update(0x1000, a)
	got2, ok2 := tc.Predict(0x1000) // after a, b follows
	tc.Update(0x1000, b)
	if !ok1 || got1 != a || !ok2 || got2 != b {
		t.Errorf("alternating pattern: got (%#x,%v) (%#x,%v), want (%#x) (%#x)",
			got1, ok1, got2, ok2, a, b)
	}
}

// A repeating dispatch sequence (interpreter-style) must become nearly
// perfectly predictable once the target history warms up.
func TestTargetCacheLearnsDispatchSequence(t *testing.T) {
	tc := MustNewTargetCache(12)
	seq := []uint32{0x100, 0x140, 0x180, 0x100, 0x1c0, 0x140}
	pc := uint32(0x2000)
	// Warm up several periods.
	for r := 0; r < 50; r++ {
		for _, tgt := range seq {
			tc.Predict(pc)
			tc.Update(pc, tgt)
		}
	}
	correct := 0
	for r := 0; r < 10; r++ {
		for _, tgt := range seq {
			if got, ok := tc.Predict(pc); ok && got == tgt {
				correct++
			}
			tc.Update(pc, tgt)
		}
	}
	if correct != 60 {
		t.Errorf("steady-state dispatch prediction %d/60", correct)
	}
}

func TestRAS(t *testing.T) {
	r, err := NewRAS(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS popped")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	r.Push(4) // overflow: discards 1
	if r.Depth() != 3 {
		t.Errorf("depth = %d", r.Depth())
	}
	for _, want := range []uint32{4, 3, 2} {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("Pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("drained RAS popped")
	}
	if _, err := NewRAS(0); err == nil {
		t.Error("RAS depth 0 accepted")
	}
}

func TestBTB(t *testing.T) {
	b, err := NewBTB(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Predict(0x1000); ok {
		t.Error("empty BTB hit")
	}
	b.Update(0x1000, 0x2000)
	if got, ok := b.Predict(0x1000); !ok || got != 0x2000 {
		t.Errorf("Predict = %#x,%v", got, ok)
	}
	// A conflicting PC (same index, different tag) must miss, not alias.
	conflict := uint32(0x1000 + 16*4)
	if _, ok := b.Predict(conflict); ok {
		t.Error("BTB tag mismatch returned a target")
	}
	b.Update(conflict, 0x3000)
	if _, ok := b.Predict(0x1000); ok {
		t.Error("evicted entry still hits")
	}
}

// mkTrace builds a trace containing the given branch records.
func mkTrace(branches ...trace.Branch) *trace.Trace {
	id := trace.MakeID(0x1000, 0)
	return &trace.Trace{ID: id, Hash: id.Hash(), StartPC: 0x1000,
		Len: 8, Branches: branches}
}

func TestSequentialPerfectComponents(t *testing.T) {
	s := MustNewSequential(SequentialConfig{})
	// Direct jumps, calls and returns never mispredict.
	tr := mkTrace(
		trace.Branch{PC: 0x1000, Ctrl: isa.CtrlJumpDir, Taken: true, Target: 0x2000},
		trace.Branch{PC: 0x2000, Ctrl: isa.CtrlCallDir, Taken: true, Target: 0x3000},
		trace.Branch{PC: 0x3000, Ctrl: isa.CtrlReturn, Taken: true, Target: 0x2004},
	)
	if !s.ObserveTrace(tr) {
		t.Error("perfect components mispredicted")
	}
	st := s.Stats()
	if st.Traces != 1 || st.TraceMisp != 0 || st.CondBranches != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSequentialConditionalAccounting(t *testing.T) {
	s := MustNewSequential(SequentialConfig{})
	// Feed a deterministic alternating branch; gshare learns it, but the
	// first observations mispredict.
	var missTraces int
	for i := 0; i < 200; i++ {
		tr := mkTrace(trace.Branch{PC: 0x1004, Ctrl: isa.CtrlCondDir, Taken: i%2 == 0, Target: 0x1100})
		if !s.ObserveTrace(tr) {
			missTraces++
		}
	}
	st := s.Stats()
	if st.CondBranches != 200 {
		t.Errorf("CondBranches = %d", st.CondBranches)
	}
	if int(st.TraceMisp) != missTraces {
		t.Errorf("TraceMisp = %d, observed %d", st.TraceMisp, missTraces)
	}
	if st.CondMisp == 0 {
		t.Error("no warmup mispredictions at all")
	}
	// Steady state must be learned: final 100 traces all correct.
	s2 := MustNewSequential(SequentialConfig{})
	var lateMiss int
	for i := 0; i < 400; i++ {
		tr := mkTrace(trace.Branch{PC: 0x1004, Ctrl: isa.CtrlCondDir, Taken: i%2 == 0, Target: 0x1100})
		ok := s2.ObserveTrace(tr)
		if i >= 300 && !ok {
			lateMiss++
		}
	}
	if lateMiss != 0 {
		t.Errorf("alternating branch still mispredicted %d times in steady state", lateMiss)
	}
}

func TestSequentialIndirects(t *testing.T) {
	s := MustNewSequential(SequentialConfig{})
	// Indirect jump with a stable target: first is a compulsory miss,
	// then all hits.
	for i := 0; i < 10; i++ {
		tr := mkTrace(trace.Branch{PC: 0x1008, Ctrl: isa.CtrlJumpInd, Taken: true, Target: 0x4000})
		s.ObserveTrace(tr)
	}
	st := s.Stats()
	if st.Indirects != 10 || st.IndirectMisp != 1 {
		t.Errorf("indirect stats = %+v", st)
	}
	if st.IndirectMissRate() != 10 {
		t.Errorf("IndirectMissRate = %v", st.IndirectMissRate())
	}
}

func TestSequentialMultiBranchTraceCountsOnce(t *testing.T) {
	s := MustNewSequential(SequentialConfig{})
	// A trace with several hopeless random branches still counts as ONE
	// trace misprediction.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		tr := mkTrace(
			trace.Branch{PC: 0x1004, Ctrl: isa.CtrlCondDir, Taken: rng.Intn(2) == 0, Target: 0x1100},
			trace.Branch{PC: 0x1008, Ctrl: isa.CtrlCondDir, Taken: rng.Intn(2) == 0, Target: 0x1200},
			trace.Branch{PC: 0x100c, Ctrl: isa.CtrlCondDir, Taken: rng.Intn(2) == 0, Target: 0x1300},
		)
		s.ObserveTrace(tr)
	}
	st := s.Stats()
	if st.Traces != 50 {
		t.Errorf("Traces = %d", st.Traces)
	}
	if st.TraceMisp > st.Traces {
		t.Errorf("TraceMisp %d > Traces %d", st.TraceMisp, st.Traces)
	}
	if st.CondBranches != 150 {
		t.Errorf("CondBranches = %d", st.CondBranches)
	}
	if got := st.BranchesPerTrace(); got != 3 {
		t.Errorf("BranchesPerTrace = %v", got)
	}
}

func TestSeqStatsZero(t *testing.T) {
	var s SeqStats
	if s.BranchMissRate() != 0 || s.TraceMissRate() != 0 ||
		s.BranchesPerTrace() != 0 || s.IndirectMissRate() != 0 {
		t.Error("zero stats produce nonzero rates")
	}
}

func TestSequentialCustomPredictor(t *testing.T) {
	b, _ := NewBimodal(10)
	s, err := NewSequential(SequentialConfig{Cond: b})
	if err != nil {
		t.Fatal(err)
	}
	tr := mkTrace(trace.Branch{PC: 0x1004, Ctrl: isa.CtrlCondDir, Taken: false, Target: 0x1100})
	s.ObserveTrace(tr)
	if s.Stats().CondBranches != 1 {
		t.Error("custom predictor not exercised")
	}
}

func TestSequentialRealRAS(t *testing.T) {
	s := MustNewSequential(SequentialConfig{RealRAS: 8})
	// Matched call/return: return predicted after the call pushed.
	call := mkTrace(trace.Branch{PC: 0x1000, Ctrl: isa.CtrlCallDir, Taken: true, Target: 0x2000})
	ret := mkTrace(trace.Branch{PC: 0x2000, Ctrl: isa.CtrlReturn, Taken: true, Target: 0x1004})
	s.ObserveTrace(call)
	if !s.ObserveTrace(ret) {
		t.Error("matched return mispredicted")
	}
	// Unmatched return (longjmp-style): must miss.
	bogus := mkTrace(trace.Branch{PC: 0x3000, Ctrl: isa.CtrlReturn, Taken: true, Target: 0x7777})
	if s.ObserveTrace(bogus) {
		t.Error("return with empty RAS predicted correctly")
	}
	st := s.Stats()
	if st.Returns != 2 || st.ReturnMisp != 1 {
		t.Errorf("return stats = %+v", st)
	}
	if st.ReturnMissRate() != 50 {
		t.Errorf("ReturnMissRate = %v", st.ReturnMissRate())
	}
}

func TestSequentialRealBTB(t *testing.T) {
	s := MustNewSequential(SequentialConfig{RealBTB: 10})
	j := mkTrace(trace.Branch{PC: 0x1000, Ctrl: isa.CtrlJumpDir, Taken: true, Target: 0x2000})
	// Compulsory miss, then hit.
	if s.ObserveTrace(j) {
		t.Error("cold BTB hit")
	}
	if !s.ObserveTrace(j) {
		t.Error("warm BTB missed")
	}
	st := s.Stats()
	if st.Directs != 2 || st.DirectMisp != 1 {
		t.Errorf("direct stats = %+v", st)
	}
}

func TestSequentialStringDescribesConfig(t *testing.T) {
	a := MustNewSequential(SequentialConfig{})
	if !strings.Contains(a.String(), "perfect RAS") {
		t.Errorf("default String = %q", a.String())
	}
	b := MustNewSequential(SequentialConfig{RealRAS: 16, RealBTB: 10})
	if !strings.Contains(b.String(), "RAS-16") || !strings.Contains(b.String(), "real BTB") {
		t.Errorf("real String = %q", b.String())
	}
}
