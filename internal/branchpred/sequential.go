package branchpred

import (
	"fmt"

	"pathtrace/internal/isa"
	"pathtrace/internal/trace"
)

// Sequential is the idealized sequential trace predictor baseline of
// §5.1: proven control-flow prediction components predicting each
// control instruction of a trace one at a time, with the outcomes of
// all previous branches known at each prediction.
//
// Components (paper configuration): a 16-bit GSHARE for conditional
// branches, a perfect branch target buffer for PC-relative and absolute
// targets, a 4K-entry correlated target cache for indirect jumps, and a
// perfect return address predictor. All updates are immediate.
//
// A trace counts as mispredicted if one or more predictions within it
// were incorrect.
type Sequential struct {
	cond   ConditionalPredictor
	tcache *TargetCache
	ras    *RAS // nil = perfect return address prediction
	btb    *BTB // nil = perfect direct-target prediction
	stats  SeqStats
}

// SeqStats are the accuracy counters of the sequential baseline,
// matching the columns of the paper's Table 2.
type SeqStats struct {
	Traces       uint64
	TraceMisp    uint64
	CondBranches uint64
	CondMisp     uint64
	Indirects    uint64
	IndirectMisp uint64
	Returns      uint64
	ReturnMisp   uint64
	Directs      uint64
	DirectMisp   uint64
	Instructions uint64
}

// BranchMissRate returns the conditional-branch misprediction rate in
// percent (Table 2, "gshare branch misprediction").
func (s SeqStats) BranchMissRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return 100 * float64(s.CondMisp) / float64(s.CondBranches)
}

// TraceMissRate returns the trace misprediction rate in percent
// (Table 2, "misprediction of traces").
func (s SeqStats) TraceMissRate() float64 {
	if s.Traces == 0 {
		return 0
	}
	return 100 * float64(s.TraceMisp) / float64(s.Traces)
}

// BranchesPerTrace returns the mean number of conditional branches per
// trace (Table 2, "number of branches per trace").
func (s SeqStats) BranchesPerTrace() float64 {
	if s.Traces == 0 {
		return 0
	}
	return float64(s.CondBranches) / float64(s.Traces)
}

// IndirectMissRate returns the indirect-target misprediction rate in
// percent.
func (s SeqStats) IndirectMissRate() float64 {
	if s.Indirects == 0 {
		return 0
	}
	return 100 * float64(s.IndirectMisp) / float64(s.Indirects)
}

// SequentialConfig sizes the baseline. Zero values take the paper's
// configuration (perfect BTB and return address prediction).
type SequentialConfig struct {
	GshareBits   int                  // default 16
	IndirectBits int                  // default 12 (4K entries)
	Cond         ConditionalPredictor // overrides the gshare if non-nil

	// RealRAS replaces the perfect return address predictor with a
	// bounded hardware stack of the given depth.
	RealRAS int
	// RealBTB replaces the perfect direct-target buffer with a tagged
	// direct-mapped BTB of 1<<RealBTB entries.
	RealBTB int
}

// NewSequential constructs the baseline.
func NewSequential(cfg SequentialConfig) (*Sequential, error) {
	if cfg.GshareBits == 0 {
		cfg.GshareBits = 16
	}
	if cfg.IndirectBits == 0 {
		cfg.IndirectBits = 12
	}
	tc, err := NewTargetCache(cfg.IndirectBits)
	if err != nil {
		return nil, err
	}
	s := &Sequential{tcache: tc}
	if cfg.RealRAS > 0 {
		ras, err := NewRAS(cfg.RealRAS)
		if err != nil {
			return nil, err
		}
		s.ras = ras
	}
	if cfg.RealBTB > 0 {
		btb, err := NewBTB(cfg.RealBTB)
		if err != nil {
			return nil, err
		}
		s.btb = btb
	}
	if cfg.Cond != nil {
		s.cond = cfg.Cond
	} else {
		g, err := NewGshare(cfg.GshareBits)
		if err != nil {
			return nil, err
		}
		s.cond = g
	}
	return s, nil
}

// MustNewSequential is NewSequential for static configurations.
func MustNewSequential(cfg SequentialConfig) *Sequential {
	s, err := NewSequential(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// ObserveTrace predicts every control instruction in the trace
// sequentially, updates the component predictors with the actual
// outcomes, and returns whether the whole trace was predicted
// correctly.
func (s *Sequential) ObserveTrace(tr *trace.Trace) bool {
	ok := true
	for _, b := range tr.Branches {
		switch b.Ctrl {
		case isa.CtrlCondDir:
			s.stats.CondBranches++
			if s.cond.Predict(b.PC) != b.Taken {
				s.stats.CondMisp++
				ok = false
			}
			s.cond.Update(b.PC, b.Taken)
		case isa.CtrlJumpDir, isa.CtrlCallDir:
			// Perfect BTB by default: direct targets are static.
			if s.btb != nil {
				s.stats.Directs++
				if t, valid := s.btb.Predict(b.PC); !valid || t != b.Target {
					s.stats.DirectMisp++
					ok = false
				}
				s.btb.Update(b.PC, b.Target)
			}
			if s.ras != nil && b.Ctrl == isa.CtrlCallDir {
				s.ras.Push(b.PC + 4)
			}
		case isa.CtrlJumpInd, isa.CtrlCallInd:
			s.stats.Indirects++
			if t, valid := s.tcache.Predict(b.PC); !valid || t != b.Target {
				s.stats.IndirectMisp++
				ok = false
			}
			s.tcache.Update(b.PC, b.Target)
			if s.ras != nil && b.Ctrl == isa.CtrlCallInd {
				s.ras.Push(b.PC + 4)
			}
		case isa.CtrlReturn:
			// Perfect return address predictor by default.
			if s.ras != nil {
				s.stats.Returns++
				if t, okPop := s.ras.Pop(); !okPop || t != b.Target {
					s.stats.ReturnMisp++
					ok = false
				}
			}
		}
	}
	s.stats.Traces++
	s.stats.Instructions += uint64(tr.Len)
	if !ok {
		s.stats.TraceMisp++
	}
	return ok
}

// Stats returns the accumulated counters.
func (s *Sequential) Stats() SeqStats { return s.stats }

// ReturnMissRate returns the return-address misprediction rate in
// percent (real-RAS configurations only).
func (s SeqStats) ReturnMissRate() float64 {
	if s.Returns == 0 {
		return 0
	}
	return 100 * float64(s.ReturnMisp) / float64(s.Returns)
}

// String describes the configuration.
func (s *Sequential) String() string {
	ras, btb := "perfect RAS", "perfect BTB"
	if s.ras != nil {
		ras = fmt.Sprintf("RAS-%d", s.ras.max)
	}
	if s.btb != nil {
		btb = "real BTB"
	}
	return fmt.Sprintf("sequential(%s, %s, %s, correlated target cache)", s.cond.Name(), btb, ras)
}
