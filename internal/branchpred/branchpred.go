// Package branchpred implements conventional branch prediction
// components — pattern history tables, global-history predictors
// (GSHARE, GAg), a bimodal predictor, a return address stack, a branch
// target buffer, and a correlated indirect-target cache — and composes
// them into the paper's idealized *sequential* trace predictor baseline
// (§5.1): each control instruction in a trace is predicted in turn,
// with the outcomes of all previous branches known at prediction time.
package branchpred

import "fmt"

// PHT is a pattern history table of two-bit saturating counters,
// initialised weakly-not-taken (paper-era convention).
type PHT struct {
	ctrs []uint8
	mask uint32
}

// NewPHT creates a table with 1<<indexBits counters.
func NewPHT(indexBits int) (*PHT, error) {
	if indexBits < 1 || indexBits > 26 {
		return nil, fmt.Errorf("branchpred: PHT index bits %d outside [1, 26]", indexBits)
	}
	p := &PHT{ctrs: make([]uint8, 1<<indexBits), mask: 1<<indexBits - 1}
	for i := range p.ctrs {
		p.ctrs[i] = 1 // weakly not taken
	}
	return p, nil
}

// Predict reads the counter at idx: values 2 and 3 predict taken.
func (p *PHT) Predict(idx uint32) bool { return p.ctrs[idx&p.mask] >= 2 }

// Update trains the counter at idx toward the actual outcome.
func (p *PHT) Update(idx uint32, taken bool) {
	c := &p.ctrs[idx&p.mask]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// ConditionalPredictor is the common interface of the direction
// predictors in this package. Update must be called with the actual
// outcome after every Predict for the same branch.
type ConditionalPredictor interface {
	Predict(pc uint32) bool
	Update(pc uint32, taken bool)
	Name() string
}

// pcBits extracts the word-index bits of a PC (instructions are
// 4-byte aligned, so the two low bits carry no information).
func pcBits(pc uint32) uint32 { return pc >> 2 }

// Gshare is the global-history predictor of McFarling: the branch PC
// exclusive-ored with a global branch history register indexes the PHT.
type Gshare struct {
	pht  *PHT
	hist uint32
	mask uint32
	bits int
}

// NewGshare creates a GSHARE predictor with `bits` of global history
// and a 1<<bits-entry PHT.
func NewGshare(bits int) (*Gshare, error) {
	pht, err := NewPHT(bits)
	if err != nil {
		return nil, err
	}
	return &Gshare{pht: pht, mask: 1<<bits - 1, bits: bits}, nil
}

// MustNewGshare is NewGshare for static configurations.
func MustNewGshare(bits int) *Gshare {
	g, err := NewGshare(bits)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Gshare) index(pc uint32) uint32 { return (pcBits(pc) ^ g.hist) & g.mask }

// Predict returns the predicted direction for the branch at pc.
func (g *Gshare) Predict(pc uint32) bool { return g.pht.Predict(g.index(pc)) }

// Update trains the PHT and shifts the outcome into the history.
func (g *Gshare) Update(pc uint32, taken bool) {
	g.pht.Update(g.index(pc), taken)
	g.hist = (g.hist<<1 | b2u(taken)) & g.mask
}

// Name implements ConditionalPredictor.
func (g *Gshare) Name() string { return fmt.Sprintf("gshare-%d", g.bits) }

// History exposes the current global history value (used by the
// correlated indirect-target cache, which shares the BHR).
func (g *Gshare) History() uint32 { return g.hist }

// GAg is the two-level predictor of Yeh & Patt in which the global
// history register alone indexes the PHT.
type GAg struct {
	pht  *PHT
	hist uint32
	mask uint32
	bits int
}

// NewGAg creates a GAg predictor with `bits` of global history.
func NewGAg(bits int) (*GAg, error) {
	pht, err := NewPHT(bits)
	if err != nil {
		return nil, err
	}
	return &GAg{pht: pht, mask: 1<<bits - 1, bits: bits}, nil
}

// Predict implements ConditionalPredictor.
func (g *GAg) Predict(pc uint32) bool { return g.pht.Predict(g.hist) }

// Update implements ConditionalPredictor.
func (g *GAg) Update(pc uint32, taken bool) {
	g.pht.Update(g.hist, taken)
	g.hist = (g.hist<<1 | b2u(taken)) & g.mask
}

// Name implements ConditionalPredictor.
func (g *GAg) Name() string { return fmt.Sprintf("gag-%d", g.bits) }

// Bimodal is the classic per-branch two-bit counter predictor (Smith):
// the PHT is indexed by PC bits alone.
type Bimodal struct {
	pht  *PHT
	bits int
}

// NewBimodal creates a bimodal predictor with a 1<<bits-entry PHT.
func NewBimodal(bits int) (*Bimodal, error) {
	pht, err := NewPHT(bits)
	if err != nil {
		return nil, err
	}
	return &Bimodal{pht: pht, bits: bits}, nil
}

// Predict implements ConditionalPredictor.
func (b *Bimodal) Predict(pc uint32) bool { return b.pht.Predict(pcBits(pc)) }

// Update implements ConditionalPredictor.
func (b *Bimodal) Update(pc uint32, taken bool) { b.pht.Update(pcBits(pc), taken) }

// Name implements ConditionalPredictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%d", b.bits) }

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
