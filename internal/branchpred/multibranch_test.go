package branchpred

import (
	"testing"

	"pathtrace/internal/isa"
	"pathtrace/internal/trace"
)

func TestMultiGAgLearnsBundlePattern(t *testing.T) {
	g, err := NewMultiGAg(12)
	if err != nil {
		t.Fatal(err)
	}
	// A repeating 3-branch bundle: T, N, T.
	pattern := []bool{true, false, true}
	for i := 0; i < 200; i++ {
		g.PredictTrace(0x1000, len(pattern))
		g.UpdateTrace(0x1000, pattern)
	}
	got := g.PredictTrace(0x1000, len(pattern))
	for i, want := range pattern {
		if got[i] != want {
			t.Errorf("steady-state bundle[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestMultiGAgSpeculativeHistoryChains(t *testing.T) {
	// The second prediction of a bundle must depend on the first: train
	// a history-dependent pattern where branch 2's outcome equals
	// branch 1's.
	g, err := NewMultiGAg(10)
	if err != nil {
		t.Fatal(err)
	}
	seqs := [][]bool{{true, true}, {false, false}}
	for i := 0; i < 400; i++ {
		s := seqs[i%2]
		g.PredictTrace(0x1000, 2)
		g.UpdateTrace(0x1000, s)
	}
	// After an even number of updates the next bundle is {T,T}.
	got := g.PredictTrace(0x1000, 2)
	if got[0] != got[1] {
		t.Errorf("bundle predictions not chained: %v", got)
	}
}

func TestPatelMultiValidation(t *testing.T) {
	if _, err := NewPatelMulti(0, 3); err == nil {
		t.Error("bits 0 accepted")
	}
	if _, err := NewPatelMulti(10, 0); err == nil {
		t.Error("slots 0 accepted")
	}
	if _, err := NewPatelMulti(10, 7); err == nil {
		t.Error("slots beyond trace branch limit accepted")
	}
	if _, err := NewMultiGAg(0); err == nil {
		t.Error("MultiGAg bits 0 accepted")
	}
}

func TestPatelMultiPerSlotCounters(t *testing.T) {
	p, err := NewPatelMulti(12, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Slot-dependent pattern for a single trace start.
	pattern := []bool{true, false, true, true, false, false}
	for i := 0; i < 100; i++ {
		p.PredictTrace(0x2000, len(pattern))
		p.UpdateTrace(0x2000, pattern)
	}
	// The history register is periodic, so the index recurs; slots must
	// have learned the per-position outcomes.
	got := p.PredictTrace(0x2000, len(pattern))
	for i, want := range pattern {
		if got[i] != want {
			t.Errorf("slot %d = %v, want %v", i, got[i], want)
		}
	}
}

func TestPatelMultiBeyondSlotsPredictsNotTaken(t *testing.T) {
	p, err := NewPatelMulti(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := p.PredictTrace(0x1000, 4)
	if len(got) != 4 {
		t.Fatalf("got %d predictions", len(got))
	}
	if got[2] || got[3] {
		t.Error("beyond-slot predictions should default not-taken")
	}
}

func TestPatelMultiNames(t *testing.T) {
	p, _ := NewPatelMulti(14, 6)
	if p.Name() != "patel-14/6" {
		t.Errorf("name = %q", p.Name())
	}
	g, _ := NewMultiGAg(14)
	if g.Name() != "mgag-14" {
		t.Errorf("name = %q", g.Name())
	}
}

func multiTrace(startPC uint32, outcomes ...bool) *trace.Trace {
	var outs uint8
	branches := make([]trace.Branch, len(outcomes))
	for i, taken := range outcomes {
		branches[i] = trace.Branch{PC: startPC + uint32(i)*8, Ctrl: isa.CtrlCondDir, Taken: taken}
		if taken {
			outs |= 1 << i
		}
	}
	id := trace.MakeID(startPC, outs)
	return &trace.Trace{ID: id, Hash: id.Hash(), StartPC: startPC,
		Len: 8, NumBr: len(outcomes), Branches: branches}
}

func TestMultiBranchHarnessAccounting(t *testing.T) {
	g, _ := NewMultiGAg(12)
	h, err := NewMultiBranchHarness(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A fixed repeating trace: steady state perfect.
	for i := 0; i < 300; i++ {
		h.ObserveTrace(multiTrace(0x1000, true, false))
	}
	warm := h.Stats()
	for i := 0; i < 100; i++ {
		if !h.ObserveTrace(multiTrace(0x1000, true, false)) {
			t.Fatal("steady-state trace mispredicted")
		}
	}
	st := h.Stats()
	if st.Traces != 400 || st.CondBranches != 800 {
		t.Errorf("stats = %+v", st)
	}
	if st.TraceMisp != warm.TraceMisp {
		t.Error("late mispredictions in steady state")
	}
	if st.TraceMissRate() < 0 || st.TraceMissRate() > 100 ||
		st.BranchMissRate() < 0 || st.BranchMissRate() > 100 {
		t.Error("rates out of range")
	}
}

func TestMultiBranchHarnessIndirects(t *testing.T) {
	g, _ := NewMultiGAg(12)
	h, _ := NewMultiBranchHarness(g, 8)
	tr := multiTrace(0x1000, true)
	tr.Branches = append(tr.Branches, trace.Branch{
		PC: 0x1020, Ctrl: isa.CtrlJumpInd, Taken: true, Target: 0x4000})
	// First observation: compulsory indirect miss marks the trace wrong
	// even if the branch was right.
	h.ObserveTrace(tr)
	if h.Stats().TraceMisp == 0 {
		t.Error("compulsory indirect miss not charged to the trace")
	}
	if _, err := NewMultiBranchHarness(nil, 0); err == nil {
		t.Error("nil predictor accepted")
	}
}

func TestMultiStatsZero(t *testing.T) {
	var s MultiStats
	if s.TraceMissRate() != 0 || s.BranchMissRate() != 0 {
		t.Error("zero stats rates not 0")
	}
}

// The ordering the paper relies on: the idealized sequential predictor
// (real intermediate outcomes) is at least as good as the realizable
// bundle predictors on the same stream.
func TestSequentialUpperBoundsMultiBranch(t *testing.T) {
	seq := MustNewSequential(SequentialConfig{})
	mg, _ := NewMultiGAg(16)
	hg, _ := NewMultiBranchHarness(mg, 0)
	pm, _ := NewPatelMulti(16, 6)
	hp, _ := NewMultiBranchHarness(pm, 0)

	// A mix of repeating bundles with history-dependent outcomes.
	patterns := [][]bool{
		{true, true, false},
		{true, false, false},
		{false, true},
		{true},
	}
	for i := 0; i < 3000; i++ {
		p := patterns[i%len(patterns)]
		tr := multiTrace(0x1000+uint32(i%7)*64, p...)
		seq.ObserveTrace(tr)
		hg.ObserveTrace(tr)
		hp.ObserveTrace(tr)
	}
	s := seq.Stats().TraceMissRate()
	g := hg.Stats().TraceMissRate()
	p := hp.Stats().TraceMissRate()
	// Allow a tiny warmup epsilon.
	if s > g+1.0 || s > p+1.0 {
		t.Errorf("sequential (%v) worse than bundle predictors (mgag %v, patel %v)", s, g, p)
	}
}
