package branchpred

import "fmt"

// TargetCache is a correlated indirect-target predictor in the style of
// Chang, Hao and Patt ("Target Prediction for Indirect Jumps", ISCA
// 1997): a table of full target addresses indexed by the jump PC
// exclusive-ored with a *target history* — a register recording the
// pattern of recent indirect-jump targets. Target history, rather than
// taken/not-taken history, is what disambiguates the dispatch jumps of
// interpreters and virtual calls.
type TargetCache struct {
	targets []uint32
	valid   []bool
	mask    uint32
	thist   uint32
}

// NewTargetCache creates a 1<<indexBits-entry target cache.
func NewTargetCache(indexBits int) (*TargetCache, error) {
	if indexBits < 1 || indexBits > 24 {
		return nil, fmt.Errorf("branchpred: target cache index bits %d outside [1, 24]", indexBits)
	}
	return &TargetCache{
		targets: make([]uint32, 1<<indexBits),
		valid:   make([]bool, 1<<indexBits),
		mask:    1<<indexBits - 1,
	}, nil
}

// MustNewTargetCache is NewTargetCache for static configurations.
func MustNewTargetCache(indexBits int) *TargetCache {
	t, err := NewTargetCache(indexBits)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *TargetCache) index(pc uint32) uint32 { return (pcBits(pc) ^ t.thist) & t.mask }

// Predict returns the cached target for the indirect jump at pc, and
// whether one exists.
func (t *TargetCache) Predict(pc uint32) (uint32, bool) {
	i := t.index(pc)
	return t.targets[i], t.valid[i]
}

// Update records the actual target and shifts it into the target
// history register.
func (t *TargetCache) Update(pc, target uint32) {
	i := t.index(pc)
	t.targets[i] = target
	t.valid[i] = true
	t.thist = t.thist<<4 ^ pcBits(target)
}

// RAS is a bounded hardware return address stack. On overflow the
// deepest entry is discarded; popping an empty stack fails.
type RAS struct {
	stack []uint32
	max   int
}

// NewRAS creates a return address stack of the given depth.
func NewRAS(depth int) (*RAS, error) {
	if depth < 1 {
		return nil, fmt.Errorf("branchpred: RAS depth %d < 1", depth)
	}
	return &RAS{stack: make([]uint32, 0, depth), max: depth}, nil
}

// Push records a return address at a call.
func (r *RAS) Push(addr uint32) {
	if len(r.stack) >= r.max {
		copy(r.stack, r.stack[1:])
		r.stack[len(r.stack)-1] = addr
		return
	}
	r.stack = append(r.stack, addr)
}

// Pop predicts the target of a return.
func (r *RAS) Pop() (uint32, bool) {
	if len(r.stack) == 0 {
		return 0, false
	}
	a := r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	return a, true
}

// Depth reports the number of saved return addresses.
func (r *RAS) Depth() int { return len(r.stack) }

// BTB is a tagged, direct-mapped branch target buffer mapping a branch
// PC to its most recent target. The idealized sequential baseline uses
// a *perfect* BTB for direct branches; this real BTB exists for
// ablations and for completeness of the substrate.
type BTB struct {
	tags    []uint32
	targets []uint32
	valid   []bool
	mask    uint32
}

// NewBTB creates a 1<<indexBits-entry BTB.
func NewBTB(indexBits int) (*BTB, error) {
	if indexBits < 1 || indexBits > 24 {
		return nil, fmt.Errorf("branchpred: BTB index bits %d outside [1, 24]", indexBits)
	}
	n := 1 << indexBits
	return &BTB{
		tags:    make([]uint32, n),
		targets: make([]uint32, n),
		valid:   make([]bool, n),
		mask:    uint32(n - 1),
	}, nil
}

// Predict returns the cached target for the branch at pc.
func (b *BTB) Predict(pc uint32) (uint32, bool) {
	i := pcBits(pc) & b.mask
	if !b.valid[i] || b.tags[i] != pc {
		return 0, false
	}
	return b.targets[i], true
}

// Update records the actual target for the branch at pc.
func (b *BTB) Update(pc, target uint32) {
	i := pcBits(pc) & b.mask
	b.tags[i] = pc
	b.targets[i] = target
	b.valid[i] = true
}
