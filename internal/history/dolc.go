package history

import (
	"fmt"

	"pathtrace/internal/trace"
)

// DOLC specifies the index-generation mechanism of §3.2, using the
// naming convention developed for the multiscalar inter-task predictor:
//
//	Depth   — number of traces besides the most recent used in the index
//	Older   — bits taken from each trace older than the last
//	Last    — bits taken from the next-to-most-recent trace
//	Current — bits taken from the most recent trace
//
// Low-order bits of the hashed identifiers are used; more bits come
// from more recent traces. The collected bits are concatenated and, if
// longer than the index, folded onto themselves with exclusive-or.
type DOLC struct {
	Depth   int
	Older   int
	Last    int
	Current int
	Index   int // index width in bits (table has 1<<Index entries)
}

// Validate checks structural constraints: field widths must not exceed
// the hashed-identifier width, the index must be positive, and the
// depth must fit a history register.
func (d DOLC) Validate() error {
	if d.Depth < 0 || d.Depth > MaxSize-1 {
		return fmt.Errorf("history: DOLC depth %d outside [0, %d]", d.Depth, MaxSize-1)
	}
	if d.Index < 1 || d.Index > 30 {
		return fmt.Errorf("history: DOLC index width %d outside [1, 30]", d.Index)
	}
	for _, f := range [...]struct {
		name string
		v    int
	}{{"Older", d.Older}, {"Last", d.Last}, {"Current", d.Current}} {
		if f.v < 0 || f.v > trace.HashBits {
			return fmt.Errorf("history: DOLC %s %d outside [0, %d]", f.name, f.v, trace.HashBits)
		}
	}
	if d.CollectedBits() == 0 {
		return fmt.Errorf("history: DOLC collects no bits")
	}
	return nil
}

// CollectedBits returns the length of the concatenated bit collection
// before folding.
func (d DOLC) CollectedBits() int {
	n := d.Current
	if d.Depth >= 1 {
		n += d.Last
	}
	if d.Depth >= 2 {
		n += (d.Depth - 1) * d.Older
	}
	return n
}

// Parts returns how many index-width segments the collection folds
// into — the "(1p)/(2p)/(3p)" annotation of the paper's Table 3.
func (d DOLC) Parts() int {
	return (d.CollectedBits() + d.Index - 1) / d.Index
}

// String renders the configuration in the paper's D-O-L-C notation.
func (d DOLC) String() string {
	return fmt.Sprintf("%d-%d-%d-%d", d.Depth, d.Older, d.Last, d.Current)
}

// IndexOf computes the prediction-table index for the given history
// register. Bits are collected most-recent-first (current in the least
// significant positions), then XOR-folded down to the index width.
func (d DOLC) IndexOf(r *Reg) uint32 {
	// Bit accumulator: collections never exceed 8*10 = 80 bits.
	var lo, hi uint64
	pos := 0
	push := func(v uint32, nbits int) {
		if nbits == 0 {
			return
		}
		masked := uint64(v) & (1<<nbits - 1)
		if pos < 64 {
			lo |= masked << pos
			if pos+nbits > 64 {
				hi |= masked >> (64 - pos)
			}
		} else {
			hi |= masked << (pos - 64)
		}
		pos += nbits
	}
	push(uint32(r.At(0)), d.Current)
	if d.Depth >= 1 {
		push(uint32(r.At(1)), d.Last)
	}
	for i := 2; i <= d.Depth; i++ {
		push(uint32(r.At(i)), d.Older)
	}
	// Fold the collection into index-width windows.
	var idx uint32
	for off := 0; off < pos; off += d.Index {
		var w uint64
		if off < 64 {
			w = lo >> off
			if off+d.Index > 64 && off < 64 {
				w |= hi << (64 - off)
			}
		} else {
			w = hi >> (off - 64)
		}
		idx ^= uint32(w) & (1<<d.Index - 1)
	}
	return idx
}

// StandardDOLC returns the index-generation configuration used for the
// given index width and history depth throughout the evaluation — this
// repository's instantiation of the paper's Table 3. The published
// table is partly illegible, so these were chosen the way the paper
// describes ("based on trial-and-error"): on our workloads, taking the
// full hashed identifier from every history position and XOR-folding
// the collection beat narrower per-position bit budgets at every table
// size (see the ablation-dolc experiment), with the 15-bit index
// preferring slightly fewer bits from older traces.
func StandardDOLC(indexBits, depth int) DOLC {
	d := DOLC{Depth: depth, Index: indexBits}
	if depth == 0 {
		// Only the most recent trace: the whole hashed ID.
		d.Current = trace.HashBits
		return d
	}
	switch indexBits {
	case 15:
		d.Older, d.Last, d.Current = 8, 10, 10
	default:
		d.Older, d.Last, d.Current = 10, 10, 10
	}
	return d
}
