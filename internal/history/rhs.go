package history

import (
	"fmt"

	"pathtrace/internal/trace"
)

// DefaultRHSDepth is the default capacity of the Return History Stack.
// The paper uses a stack whose maximum depth is "more than sufficient
// to handle all the benchmarks except for the recursive section of
// xlisp, where the predictor is of little use anyway"; 16 entries meets
// that description for our workloads and is configurable.
const DefaultRHSDepth = 16

// ReturnStack is the Return History Stack (RHS) of §3.4. It saves path
// history across procedure calls so that, after a subroutine returns,
// the history again reflects the control flow *before* the call —
// splicing in the most recent one or two traces from inside the
// subroutine.
type ReturnStack struct {
	stack []Reg
	max   int
}

// NewReturnStack returns an RHS holding at most max history snapshots.
func NewReturnStack(max int) (*ReturnStack, error) {
	if max < 1 {
		return nil, fmt.Errorf("history: return stack depth %d < 1", max)
	}
	return &ReturnStack{stack: make([]Reg, 0, max), max: max}, nil
}

// MustNewReturnStack is NewReturnStack for static configurations.
func MustNewReturnStack(max int) *ReturnStack {
	s, err := NewReturnStack(max)
	if err != nil {
		panic(err)
	}
	return s
}

// SpliceKeep implements the paper's splice rule: "when there are five
// or fewer entries in the history, only the most recent hashed
// identifier is kept; when there are more than five entries the two
// most recent hashed identifiers are kept." It is exported so the
// unbounded predictor's full-identifier history can apply the same rule.
func SpliceKeep(histSize int) int {
	if histSize <= 5 {
		return 1
	}
	return 2
}

// keepEntries is the internal alias.
func keepEntries(histSize int) int { return SpliceKeep(histSize) }

// Observe applies the RHS actions for a completed trace, after the
// history register has been updated with the trace's hashed ID:
//
//   - if the trace contains calls (net of a terminal return), a copy of
//     the current history is pushed per call;
//   - if the trace ends in a return and contains no calls, the stack is
//     popped and spliced into the history.
//
// Pushing onto a full stack discards the deepest entry (hardware
// behaviour); popping an empty stack leaves the history unchanged.
func (s *ReturnStack) Observe(tr *trace.Trace, h *Reg) {
	net := tr.NetCalls()
	switch {
	case net > 0:
		for i := 0; i < net; i++ {
			s.push(*h)
		}
	case tr.EndsInRet && tr.Calls == 0:
		if top, ok := s.pop(); ok {
			splice(h, &top)
		}
	}
}

// Depth returns the number of histories currently saved.
func (s *ReturnStack) Depth() int { return len(s.stack) }

// Clone returns an independent copy, used for speculation checkpoints.
func (s *ReturnStack) Clone() *ReturnStack {
	c := &ReturnStack{stack: make([]Reg, len(s.stack), s.max), max: s.max}
	copy(c.stack, s.stack)
	return c
}

// Restore overwrites the stack contents from a checkpoint clone.
func (s *ReturnStack) Restore(from *ReturnStack) {
	s.stack = s.stack[:0]
	s.stack = append(s.stack, from.stack...)
	s.max = from.max
}

// StackState is the exported, serializable state of a Return History
// Stack: its capacity and the saved registers, deepest first.
type StackState struct {
	Max  int
	Regs []RegState
}

// State captures the stack for serialization (session snapshots).
func (s *ReturnStack) State() StackState {
	st := StackState{Max: s.max, Regs: make([]RegState, len(s.stack))}
	for i := range s.stack {
		st.Regs[i] = s.stack[i].State()
	}
	return st
}

// StackFromState rebuilds a Return History Stack from a serialized
// state, validating capacity and every saved register.
func StackFromState(st StackState) (*ReturnStack, error) {
	if st.Max < 1 {
		return nil, fmt.Errorf("history: restored return stack depth %d < 1", st.Max)
	}
	if len(st.Regs) > st.Max {
		return nil, fmt.Errorf("history: restored return stack holds %d > max %d entries", len(st.Regs), st.Max)
	}
	s := &ReturnStack{stack: make([]Reg, len(st.Regs), st.Max), max: st.Max}
	for i, rs := range st.Regs {
		r, err := RegFromState(rs)
		if err != nil {
			return nil, err
		}
		s.stack[i] = r
	}
	return s, nil
}

func (s *ReturnStack) push(h Reg) {
	if len(s.stack) >= s.max {
		// Discard the deepest (oldest) snapshot.
		copy(s.stack, s.stack[1:])
		s.stack[len(s.stack)-1] = h
		return
	}
	s.stack = append(s.stack, h)
}

func (s *ReturnStack) pop() (Reg, bool) {
	if len(s.stack) == 0 {
		return Reg{}, false
	}
	top := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	return top, true
}

// splice keeps the most recent keepEntries(size) identifiers of h (the
// tail of the subroutine) and fills the older positions from the
// pre-call history snapshot.
func splice(h *Reg, saved *Reg) {
	keep := keepEntries(h.size)
	if keep > h.size {
		keep = h.size
	}
	for i := keep; i < h.size; i++ {
		h.ids[i] = saved.ids[i-keep]
	}
	// The spliced register holds the kept entries plus whatever the
	// snapshot had filled.
	n := keep + saved.n
	if n > h.size {
		n = h.size
	}
	h.n = n
}
