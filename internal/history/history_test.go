package history

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathtrace/internal/trace"
)

func TestRegPushAndAt(t *testing.T) {
	r := MustNewReg(4)
	if r.Len() != 0 {
		t.Errorf("fresh Len = %d", r.Len())
	}
	for i := 1; i <= 6; i++ {
		r.Push(trace.HashedID(i))
	}
	// Most recent four: 6,5,4,3.
	for i, want := range []trace.HashedID{6, 5, 4, 3} {
		if got := r.At(i); got != want {
			t.Errorf("At(%d) = %d, want %d", i, got, want)
		}
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
	// Out-of-range positions read as zero.
	if r.At(4) != 0 || r.At(-1) != 0 {
		t.Error("out-of-range At not zero")
	}
}

func TestRegSizeValidation(t *testing.T) {
	if _, err := NewReg(0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewReg(MaxSize + 1); err == nil {
		t.Error("oversize accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewReg(0) did not panic")
		}
	}()
	MustNewReg(0)
}

func TestRegCheckpointRestore(t *testing.T) {
	r := MustNewReg(8)
	for i := 1; i <= 8; i++ {
		r.Push(trace.HashedID(i * 10))
	}
	snap := r // value copy is a checkpoint
	r.Push(999)
	r.Push(998)
	r = snap
	for i := 0; i < 8; i++ {
		if got, want := r.At(i), trace.HashedID((8-i)*10); got != want {
			t.Errorf("after restore At(%d) = %d, want %d", i, got, want)
		}
	}
}

// Property: a snapshot + pushes + restore is the identity.
func TestRegRestoreInverseQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := MustNewReg(1 + rng.Intn(MaxSize))
		for i := 0; i < rng.Intn(20); i++ {
			r.Push(trace.HashedID(rng.Intn(1 << trace.HashBits)))
		}
		snap := r
		for i := 0; i < 1+rng.Intn(10); i++ {
			r.Push(trace.HashedID(rng.Intn(1 << trace.HashBits)))
		}
		r = snap
		return r == snap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPathKeyDistinguishesPaths(t *testing.T) {
	a := MustNewReg(8)
	b := MustNewReg(8)
	for i := 0; i < 8; i++ {
		a.Push(trace.HashedID(i + 1))
		b.Push(trace.HashedID(i + 1))
	}
	if a.Key() != b.Key() {
		t.Error("identical paths produced different keys")
	}
	b.Push(42)
	if a.Key() == b.Key() {
		t.Error("different paths produced identical keys")
	}
}

func TestPathKeyUsesAllPositions(t *testing.T) {
	// Changing only the oldest tracked ID must change the key (8 IDs at
	// 10 bits spans both words of the key).
	a := MustNewReg(8)
	b := MustNewReg(8)
	a.Push(0x3ff)
	b.Push(0x3fe)
	for i := 0; i < 7; i++ {
		a.Push(trace.HashedID(i))
		b.Push(trace.HashedID(i))
	}
	if a.Key() == b.Key() {
		t.Error("oldest position not part of key")
	}
}

func TestDOLCValidate(t *testing.T) {
	good := DOLC{Depth: 3, Older: 4, Last: 6, Current: 6, Index: 16}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []DOLC{
		{Depth: -1, Current: 5, Index: 10},
		{Depth: 8, Current: 5, Index: 10},
		{Depth: 0, Current: 11, Index: 10},
		{Depth: 0, Current: 5, Index: 0},
		{Depth: 0, Current: 0, Index: 10},
		{Depth: 2, Older: -1, Last: 5, Current: 5, Index: 10},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad config %d (%v) accepted", i, d)
		}
	}
}

func TestDOLCCollectedBitsAndParts(t *testing.T) {
	cases := []struct {
		d     DOLC
		bits  int
		parts int
	}{
		{DOLC{Depth: 0, Current: 10, Index: 16}, 10, 1},
		{DOLC{Depth: 1, Last: 8, Current: 8, Index: 16}, 16, 1},
		{DOLC{Depth: 3, Older: 4, Last: 6, Current: 6, Index: 16}, 20, 2},
		{DOLC{Depth: 7, Older: 4, Last: 6, Current: 6, Index: 16}, 36, 3},
	}
	for _, tc := range cases {
		if got := tc.d.CollectedBits(); got != tc.bits {
			t.Errorf("%v CollectedBits = %d, want %d", tc.d, got, tc.bits)
		}
		if got := tc.d.Parts(); got != tc.parts {
			t.Errorf("%v Parts = %d, want %d", tc.d, got, tc.parts)
		}
	}
}

func TestDOLCIndexDepthZero(t *testing.T) {
	d := DOLC{Depth: 0, Current: 10, Index: 16}
	r := MustNewReg(1)
	r.Push(0x2a5)
	if got := d.IndexOf(&r); got != 0x2a5 {
		t.Errorf("index = %#x, want 0x2a5", got)
	}
}

func TestDOLCIndexConcatenation(t *testing.T) {
	// Depth 1, no folding: index = last[0:8] << 8 ... actually current is
	// pushed first (LSB), so index = current | last<<8.
	d := DOLC{Depth: 1, Last: 8, Current: 8, Index: 16}
	r := MustNewReg(2)
	r.Push(0x3AB) // becomes "last" after the next push
	r.Push(0x1CD) // current
	want := uint32(0xCD) | uint32(0xAB)<<8
	if got := d.IndexOf(&r); got != want {
		t.Errorf("index = %#x, want %#x", got, want)
	}
}

func TestDOLCIndexFolding(t *testing.T) {
	// Depth 1, 8+8 bits folded into an 8-bit index: XOR of halves.
	d := DOLC{Depth: 1, Last: 8, Current: 8, Index: 8}
	r := MustNewReg(2)
	r.Push(0x0F0)
	r.Push(0x033)
	want := uint32(0x33 ^ 0xF0)
	if got := d.IndexOf(&r); got != want {
		t.Errorf("index = %#x, want %#x", got, want)
	}
}

// Property: DOLC index is always within table bounds and deterministic.
func TestDOLCIndexRangeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := rng.Intn(MaxSize)
		d := StandardDOLC([]int{14, 15, 16}[rng.Intn(3)], depth)
		if err := d.Validate(); err != nil {
			return false
		}
		r := MustNewReg(depth + 1)
		for i := 0; i < rng.Intn(16); i++ {
			r.Push(trace.HashedID(rng.Intn(1 << trace.HashBits)))
		}
		idx := d.IndexOf(&r)
		return idx < 1<<d.Index && idx == d.IndexOf(&r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: for depth 7 configs every history position can influence
// the index.
func TestDOLCUsesDeepHistory(t *testing.T) {
	d := StandardDOLC(16, 7)
	base := MustNewReg(8)
	for i := 0; i < 8; i++ {
		base.Push(trace.HashedID(0x155))
	}
	for pos := 0; pos < 8; pos++ {
		r := base
		// Rebuild with position pos flipped in a low bit.
		r2 := MustNewReg(8)
		for i := 7; i >= 0; i-- {
			v := trace.HashedID(0x155)
			if i == pos {
				v ^= 1
			}
			r2.Push(v)
		}
		if d.IndexOf(&r) == d.IndexOf(&r2) {
			t.Errorf("flipping history position %d does not affect index", pos)
		}
	}
}

func TestStandardDOLCAllValid(t *testing.T) {
	for _, w := range []int{14, 15, 16} {
		for depth := 0; depth <= 7; depth++ {
			d := StandardDOLC(w, depth)
			if err := d.Validate(); err != nil {
				t.Errorf("StandardDOLC(%d,%d): %v", w, depth, err)
			}
			if d.Depth != depth || d.Index != w {
				t.Errorf("StandardDOLC(%d,%d) = %+v", w, depth, d)
			}
		}
	}
}

func mkTrace(hash trace.HashedID, calls int, endsRet bool) *trace.Trace {
	return &trace.Trace{Hash: hash, Calls: calls, EndsInRet: endsRet}
}

func TestRHSPushPopSplice(t *testing.T) {
	rhs := MustNewReturnStack(16)
	h := MustNewReg(4) // size<=5 -> keep 1

	// Build pre-call history A B C D (D most recent).
	for _, v := range []trace.HashedID{1, 2, 3, 4} {
		h.Push(v)
	}
	// Trace with one call: push snapshot (history already includes it).
	h.Push(10)
	rhs.Observe(mkTrace(10, 1, false), &h)
	if rhs.Depth() != 1 {
		t.Fatalf("stack depth = %d, want 1", rhs.Depth())
	}
	// Subroutine body overwrites history.
	for _, v := range []trace.HashedID{20, 21, 22, 23} {
		h.Push(v)
	}
	// Returning trace (no calls): pop and splice.
	h.Push(30)
	rhs.Observe(mkTrace(30, 0, true), &h)
	if rhs.Depth() != 0 {
		t.Fatalf("stack depth = %d, want 0", rhs.Depth())
	}
	// Keep 1 most recent (30); older positions from snapshot [10,4,3].
	want := []trace.HashedID{30, 10, 4, 3}
	for i, w := range want {
		if got := h.At(i); got != w {
			t.Errorf("After splice At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestRHSKeepTwoForDeepHistory(t *testing.T) {
	rhs := MustNewReturnStack(16)
	h := MustNewReg(8) // size>5 -> keep 2
	for i := 1; i <= 8; i++ {
		h.Push(trace.HashedID(i))
	}
	h.Push(100) // calling trace
	rhs.Observe(mkTrace(100, 1, false), &h)
	for i := 0; i < 8; i++ {
		h.Push(trace.HashedID(200 + i))
	}
	h.Push(150) // returning trace
	rhs.Observe(mkTrace(150, 0, true), &h)
	// Keep 2: [150, 207]; rest from snapshot [100, 8, 7, 6, 5, 4].
	want := []trace.HashedID{150, 207, 100, 8, 7, 6, 5, 4}
	for i, w := range want {
		if got := h.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestRHSMultipleCallsPushMultipleCopies(t *testing.T) {
	rhs := MustNewReturnStack(16)
	h := MustNewReg(4)
	h.Push(5)
	rhs.Observe(mkTrace(5, 3, false), &h)
	if rhs.Depth() != 3 {
		t.Errorf("depth = %d, want 3", rhs.Depth())
	}
	// Trace with a call AND ending in return: net 0, no push, no pop.
	h.Push(6)
	rhs.Observe(mkTrace(6, 1, true), &h)
	if rhs.Depth() != 3 {
		t.Errorf("depth after net-zero trace = %d, want 3", rhs.Depth())
	}
}

func TestRHSUnderflowIsNoop(t *testing.T) {
	rhs := MustNewReturnStack(4)
	h := MustNewReg(4)
	for _, v := range []trace.HashedID{1, 2, 3, 4} {
		h.Push(v)
	}
	before := h
	rhs.Observe(mkTrace(4, 0, true), &h) // return with empty stack
	if h != before {
		t.Error("pop of empty stack modified history")
	}
}

func TestRHSOverflowDropsDeepest(t *testing.T) {
	rhs := MustNewReturnStack(2)
	h := MustNewReg(4)
	for i := 1; i <= 3; i++ {
		h.Push(trace.HashedID(i * 11))
		rhs.Observe(mkTrace(trace.HashedID(i*11), 1, false), &h)
	}
	if rhs.Depth() != 2 {
		t.Fatalf("depth = %d, want 2 (bounded)", rhs.Depth())
	}
	// Pop should yield the most recent snapshot (pushed at i=3).
	h2 := MustNewReg(4)
	h2.Push(99)
	rhs.Observe(mkTrace(99, 0, true), &h2)
	// Snapshot at i=3 had [33 22 11 0]; keep 1 -> [99 33 22 11].
	want := []trace.HashedID{99, 33, 22, 11}
	for i, w := range want {
		if got := h2.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestRHSCloneRestore(t *testing.T) {
	rhs := MustNewReturnStack(8)
	h := MustNewReg(4)
	h.Push(1)
	rhs.Observe(mkTrace(1, 2, false), &h)
	snap := rhs.Clone()
	h.Push(2)
	rhs.Observe(mkTrace(2, 1, false), &h)
	if rhs.Depth() != 3 {
		t.Fatalf("depth = %d", rhs.Depth())
	}
	rhs.Restore(snap)
	if rhs.Depth() != 2 {
		t.Errorf("restored depth = %d, want 2", rhs.Depth())
	}
	// Clone must be independent of later mutation.
	rhs.Observe(mkTrace(3, 1, false), &h)
	if snap.Depth() != 2 {
		t.Errorf("clone mutated: depth %d", snap.Depth())
	}
}

func TestNewReturnStackValidation(t *testing.T) {
	if _, err := NewReturnStack(0); err == nil {
		t.Error("depth 0 accepted")
	}
}
