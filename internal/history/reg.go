// Package history implements the path-history machinery of the
// path-based next trace predictor: the history register of hashed trace
// identifiers, the DOLC index-generation mechanism, and the Return
// History Stack (§3.2 and §3.4 of the paper).
package history

import (
	"fmt"

	"pathtrace/internal/trace"
)

// MaxSize is the largest number of hashed trace identifiers a history
// register can track: the paper studies history depths 0 through 7,
// i.e. up to 8 identifiers.
const MaxSize = 8

// Reg is the path history register: a shift register of hashed trace
// identifiers. Index 0 is the most recent trace ("current" in DOLC
// terms), index 1 the one before ("last"), and so on.
//
// Reg is a value type; copying it is a checkpoint. The predictor
// updates it speculatively with each prediction and restores a saved
// copy when a misprediction is discovered.
type Reg struct {
	ids  [MaxSize]trace.HashedID
	size int // identifiers tracked (depth+1)
	n    int // identifiers pushed so far, capped at size

	// hook, when set, runs after every Push. It exists for fault
	// injection (package faults corrupts identifiers through it) and is
	// carried along by checkpoints, so restored histories stay under
	// the same injection plan. It is an interface (not a func) so Reg
	// stays comparable; implementations must be pointer-backed.
	hook PushHook
}

// PushHook observes — and may corrupt — a register after each Push.
// Implementations must not call Push re-entrantly.
type PushHook interface {
	OnPush(*Reg)
}

// NewReg returns a history register tracking size identifiers
// (the predictor's history depth + 1).
func NewReg(size int) (Reg, error) {
	if size < 1 || size > MaxSize {
		return Reg{}, fmt.Errorf("history: size %d outside [1, %d]", size, MaxSize)
	}
	return Reg{size: size}, nil
}

// MustNewReg is NewReg for statically known sizes; it panics on error.
func MustNewReg(size int) Reg {
	r, err := NewReg(size)
	if err != nil {
		panic(err)
	}
	return r
}

// Push shifts a new most-recent identifier into the register.
func (r *Reg) Push(h trace.HashedID) {
	copy(r.ids[1:r.size], r.ids[:r.size-1])
	r.ids[0] = h
	if r.n < r.size {
		r.n++
	}
	if r.hook != nil {
		r.hook.OnPush(r)
	}
}

// SetFaultHook installs a hook invoked after every Push (nil removes
// it). Used by fault injection.
func (r *Reg) SetFaultHook(h PushHook) { r.hook = h }

// CorruptAt XORs mask into the i-th most recent identifier. It is the
// mutation primitive for fault injection; out-of-range positions are
// ignored.
func (r *Reg) CorruptAt(i int, mask trace.HashedID) {
	if i < 0 || i >= r.size {
		return
	}
	r.ids[i] ^= mask & (1<<trace.HashBits - 1)
}

// At returns the i-th most recent identifier (0 = current). Positions
// not yet filled (cold start) read as zero, matching hardware reset.
func (r *Reg) At(i int) trace.HashedID {
	if i < 0 || i >= r.size {
		return 0
	}
	return r.ids[i]
}

// Size returns the number of identifiers tracked.
func (r *Reg) Size() int { return r.size }

// Len returns the number of identifiers pushed so far (saturating at
// Size); it distinguishes a cold register from one holding real zeros.
func (r *Reg) Len() int { return r.n }

// RegState is the exported, serializable state of a history register:
// everything Push/At observe, without the fault hook (hooks are process
// state and must be re-installed by whoever restores the register).
type RegState struct {
	IDs  [MaxSize]trace.HashedID
	Size int
	N    int
}

// State captures the register for serialization (session snapshots).
func (r *Reg) State() RegState {
	return RegState{IDs: r.ids, Size: r.size, N: r.n}
}

// RegFromState rebuilds a register from a serialized state, validating
// the same invariants NewReg enforces plus the fill count. The restored
// register carries no fault hook.
func RegFromState(st RegState) (Reg, error) {
	if st.Size < 1 || st.Size > MaxSize {
		return Reg{}, fmt.Errorf("history: restored size %d outside [1, %d]", st.Size, MaxSize)
	}
	if st.N < 0 || st.N > st.Size {
		return Reg{}, fmt.Errorf("history: restored fill %d outside [0, %d]", st.N, st.Size)
	}
	for i, id := range st.IDs {
		if id >= 1<<trace.HashBits {
			return Reg{}, fmt.Errorf("history: restored id[%d] = %#x exceeds %d bits", i, id, trace.HashBits)
		}
	}
	return Reg{ids: st.IDs, size: st.Size, n: st.N}, nil
}

// PathKey is a comparable value identifying the exact contents of a
// history register. It is used by the unbounded-table predictor, where
// each unique path must map to its own entry.
type PathKey struct {
	hi, lo uint64
}

// Key packs the register's identifiers into a PathKey. Only the tracked
// identifiers participate.
func (r *Reg) Key() PathKey {
	var k PathKey
	for i := 0; i < r.size; i++ {
		v := uint64(r.ids[i])
		if pos := i * trace.HashBits; pos < 64 {
			k.lo |= v << pos
			if pos+trace.HashBits > 64 {
				k.hi |= v >> (64 - pos)
			}
		} else {
			k.hi |= v << (pos - 64)
		}
	}
	return k
}
