module pathtrace

go 1.22
