package pathtrace_test

import (
	"fmt"
	"sync"
	"testing"

	"pathtrace"
)

// benchLimit is the per-workload instruction budget used by the
// experiment benchmarks. Each benchmark iteration regenerates the whole
// exhibit at this scale; `ntp -run <id> -len N` reproduces any of them
// at full size.
const benchLimit = 200_000

func benchExperiment(b *testing.B, name string, opt pathtrace.ExperimentOptions) {
	b.Helper()
	if opt.Limit == 0 {
		opt.Limit = benchLimit
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := pathtrace.RunExperiment(name, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Text == "" {
			b.Fatal("empty result")
		}
	}
}

// One benchmark per table and figure in the paper's evaluation.

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1", pathtrace.ExperimentOptions{}) }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2", pathtrace.ExperimentOptions{}) }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3", pathtrace.ExperimentOptions{}) }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4", pathtrace.ExperimentOptions{}) }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6", pathtrace.ExperimentOptions{}) }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7", pathtrace.ExperimentOptions{}) }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8", pathtrace.ExperimentOptions{}) }
func BenchmarkCostReduced(b *testing.B) {
	benchExperiment(b, "costreduced", pathtrace.ExperimentOptions{})
}

// BenchmarkHeadline covers the headline exhibit at two grains:
// "experiment" regenerates the whole table per iteration (capture +
// replay through every configuration), while "predict" isolates the
// steady-state replay→predict hot path — one trace through the
// sequential baseline, the bounded hybrid, and the unbounded predictor
// per iteration — which must run allocation-free.
func BenchmarkHeadline(b *testing.B) {
	b.Run("experiment", func(b *testing.B) {
		benchExperiment(b, "headline", pathtrace.ExperimentOptions{})
	})
	b.Run("predict", func(b *testing.B) {
		w, ok := pathtrace.WorkloadByName("go")
		if !ok {
			b.Fatal("workload go missing")
		}
		s, err := pathtrace.CaptureTraceStream(w, benchLimit)
		if err != nil {
			b.Fatal(err)
		}
		seq, err := pathtrace.NewSequentialBaseline(pathtrace.SequentialConfig{})
		if err != nil {
			b.Fatal(err)
		}
		hybrid := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{
			Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true,
		})
		ub, err := pathtrace.NewUnboundedPredictor(pathtrace.UnboundedConfig{
			Depth: 7, Hybrid: true, UseRHS: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		// One full warm pass so the unbounded predictor's maps hold every
		// path before measurement: steady state is hit-and-update.
		step := func(tr *pathtrace.Trace) {
			seq.ObserveTrace(tr)
			hybrid.Predict()
			hybrid.Update(tr)
			ub.Predict()
			ub.Update(tr)
		}
		if _, _, err := s.Replay(nil, step); err != nil {
			b.Fatal(err)
		}
		n := s.Len()
		var tr pathtrace.Trace
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.At(i%n, &tr)
			step(&tr)
		}
	})
}

// Ablation benchmarks (DESIGN.md §5).

func BenchmarkAblationCounter(b *testing.B) {
	benchExperiment(b, "ablation-counter", pathtrace.ExperimentOptions{Workloads: []string{"compress", "go"}})
}
func BenchmarkAblationHybrid(b *testing.B) {
	benchExperiment(b, "ablation-hybrid", pathtrace.ExperimentOptions{Workloads: []string{"compress", "go"}})
}
func BenchmarkAblationRHS(b *testing.B) {
	benchExperiment(b, "ablation-rhs", pathtrace.ExperimentOptions{Workloads: []string{"xlisp", "go"}})
}
func BenchmarkAblationDOLC(b *testing.B) {
	benchExperiment(b, "ablation-dolc", pathtrace.ExperimentOptions{Workloads: []string{"gcc"}})
}
func BenchmarkAblationSelect(b *testing.B) {
	benchExperiment(b, "ablation-select", pathtrace.ExperimentOptions{Workloads: []string{"compress"}})
}

// Component microbenchmarks.

// benchTraces returns a reusable trace stream captured once.
var benchTraces = func() func(b *testing.B) []pathtrace.Trace {
	var once sync.Once
	var traces []pathtrace.Trace
	return func(b *testing.B) []pathtrace.Trace {
		once.Do(func() {
			w, ok := pathtrace.WorkloadByName("go")
			if !ok {
				return
			}
			_, _, err := pathtrace.RunWorkload(w, 500_000, func(tr *pathtrace.Trace) {
				cp := *tr
				cp.Branches = append([]pathtrace.TraceBranch(nil), tr.Branches...)
				traces = append(traces, cp)
			})
			if err != nil {
				traces = nil
			}
		})
		if len(traces) == 0 {
			b.Fatal("failed to capture trace stream")
		}
		return traces
	}
}()

func BenchmarkSimulator(b *testing.B) {
	w, _ := pathtrace.WorkloadByName("compress")
	prog := w.Program()
	b.ReportAllocs()
	b.ResetTimer()
	var retired uint64
	for i := 0; i < b.N; i++ {
		cpu, err := pathtrace.NewCPU(prog)
		if err != nil {
			b.Fatal(err)
		}
		if err := cpu.Run(100_000, nil); err != nil {
			b.Fatal(err)
		}
		retired += cpu.InstrCount
	}
	b.ReportMetric(float64(retired)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func BenchmarkTraceSelection(b *testing.B) {
	w, _ := pathtrace.WorkloadByName("compress")
	prog := w.Program()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu, err := pathtrace.NewCPU(prog)
		if err != nil {
			b.Fatal(err)
		}
		sel, err := pathtrace.NewTraceSelector(pathtrace.DefaultTraceConfig(), func(*pathtrace.Trace) {})
		if err != nil {
			b.Fatal(err)
		}
		if err := cpu.Run(100_000, sel.Feed); err != nil {
			b.Fatal(err)
		}
		sel.Flush()
	}
}

func BenchmarkHybridPredictor(b *testing.B) {
	traces := benchTraces(b)
	p := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{
		Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := &traces[i%len(traces)]
		p.Predict()
		p.Update(tr)
	}
}

// BenchmarkPredictBatch measures the batched round loop at the batch
// sizes the serving layer actually sends. b.N counts traces, so ns/op
// is per trace and directly comparable with BenchmarkHybridPredictor's
// scalar rounds; the loop must hold 0 allocs/op at every size.
func BenchmarkPredictBatch(b *testing.B) {
	traces := benchTraces(b)
	for _, size := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			p := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{
				Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true,
			})
			preds := make([]pathtrace.Prediction, size)
			wrap := len(traces) - size
			if wrap <= 0 {
				b.Fatalf("trace stream too short for batch %d", size)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				off := i % wrap
				pathtrace.PredictBatch(p, traces[off:off+size], preds)
			}
		})
	}
}

func BenchmarkBasicPredictor(b *testing.B) {
	traces := benchTraces(b)
	p := pathtrace.MustNewPredictor(pathtrace.PredictorConfig{Depth: 7, IndexBits: 16})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := &traces[i%len(traces)]
		p.Predict()
		p.Update(tr)
	}
}

func BenchmarkUnboundedPredictor(b *testing.B) {
	traces := benchTraces(b)
	p, err := pathtrace.NewUnboundedPredictor(pathtrace.UnboundedConfig{
		Depth: 7, Hybrid: true, UseRHS: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := &traces[i%len(traces)]
		p.Predict()
		p.Update(tr)
	}
}

func BenchmarkSequentialBaseline(b *testing.B) {
	traces := benchTraces(b)
	seq, err := pathtrace.NewSequentialBaseline(pathtrace.SequentialConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq.ObserveTrace(&traces[i%len(traces)])
	}
}

func BenchmarkTraceCache(b *testing.B) {
	traces := benchTraces(b)
	tc, err := pathtrace.NewTraceCache(pathtrace.DefaultTraceCacheConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Access(traces[i%len(traces)].ID)
	}
}

func BenchmarkEngineDelayedUpdates(b *testing.B) {
	traces := benchTraces(b)
	hp, err := pathtrace.NewHybridPredictor(pathtrace.PredictorConfig{
		Depth: 7, IndexBits: 16, Hybrid: true, UseRHS: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := pathtrace.NewEngine(pathtrace.DefaultEngineConfig(), hp)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Feed(&traces[i%len(traces)])
	}
}

func BenchmarkTraceHash(b *testing.B) {
	traces := benchTraces(b)
	var sink pathtrace.HashedID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink ^= traces[i%len(traces)].ID.Hash()
	}
	_ = sink
}

func BenchmarkAssembler(b *testing.B) {
	w, _ := pathtrace.WorkloadByName("gcc")
	_ = w // force registration
	src := benchGCCSource(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pathtrace.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGCCSource(b *testing.B) string {
	// A modest synthetic program; assembling the real gcc workload every
	// iteration would dominate the benchmark with I/O-free but huge text.
	return `
        .data
v:      .word 1, 2, 3, 4
        .text
main:   li   t0, 100
loop:   lw   t1, 0(gp)
        add  t2, t2, t1
        addi t0, t0, -1
        bnez t0, loop
        out  t2
        halt
`
}

func BenchmarkMultiBranch(b *testing.B) {
	benchExperiment(b, "multibranch", pathtrace.ExperimentOptions{})
}

func BenchmarkFrontend(b *testing.B) {
	benchExperiment(b, "frontend", pathtrace.ExperimentOptions{Workloads: []string{"mksim"}})
}

func BenchmarkConfidence(b *testing.B) {
	benchExperiment(b, "confidence", pathtrace.ExperimentOptions{Workloads: []string{"mksim"}})
}

func BenchmarkRealistic(b *testing.B) {
	benchExperiment(b, "realistic", pathtrace.ExperimentOptions{Workloads: []string{"gcc"}})
}

func BenchmarkTraceCacheSweep(b *testing.B) {
	benchExperiment(b, "ablation-tracecache", pathtrace.ExperimentOptions{Workloads: []string{"gcc"}})
}

func BenchmarkHashAblation(b *testing.B) {
	benchExperiment(b, "ablation-hash", pathtrace.ExperimentOptions{Workloads: []string{"compress"}})
}
